//! Integrated signature scheme (extension; Lee & Lee 1996).
//!
//! One *integrated signature* summarizes a frame of `group_len` consecutive
//! records: the superimposition of their record signatures. A client that
//! sees a non-matching frame signature dozes over the whole frame at once,
//! trading per-record filtering precision (the integrated code is denser,
//! so frames false-drop more) for far fewer signature probes.

use std::sync::Arc;

use bda_core::{
    Action, Bucket, BucketMeta, Channel, Coverage, Dataset, FastForward, Key, Params,
    ProtocolMachine, Result, Scheme, StaleResponse, System, Ticks, Verdict,
};

use crate::sig::{SigParams, SigTable, Signature};
use crate::simple::SigPayload;

/// The integrated signature scheme.
#[derive(Debug, Clone, Copy)]
pub struct IntegratedSignatureScheme {
    sig: SigParams,
    group_len: u32,
}

impl Default for IntegratedSignatureScheme {
    fn default() -> Self {
        IntegratedSignatureScheme {
            sig: SigParams::default(),
            group_len: 8,
        }
    }
}

impl IntegratedSignatureScheme {
    /// Integrated signatures over frames of `group_len` records (≥ 1).
    pub fn new(group_len: u32) -> Self {
        IntegratedSignatureScheme {
            sig: SigParams::default(),
            group_len: group_len.max(1),
        }
    }

    /// Override the signature parameters.
    pub fn with_params(mut self, sig: SigParams) -> Self {
        self.sig = sig;
        self
    }
}

/// A built integrated-signature broadcast.
#[derive(Debug)]
pub struct IntegratedSystem {
    channel: Channel<SigPayload>,
    sig: SigParams,
    num_records: u32,
    data_size: Ticks,
    /// Nominal frame width (every frame but the last).
    group_len: u32,
    /// Frame signatures in frame order, packed for fast-forward matching.
    table: Arc<SigTable>,
}

impl Scheme for IntegratedSignatureScheme {
    type System = IntegratedSystem;

    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System> {
        params.validate()?;
        let sig_size = params.header_size + self.sig.sig_bytes;
        let data_size = params.data_bucket_size();
        let mut buckets = Vec::new();
        let mut group_sigs = Vec::new();
        for (g, frame) in dataset
            .records()
            .chunks(self.group_len as usize)
            .enumerate()
        {
            let mut sig = Signature::zero(self.sig.bits());
            for r in frame {
                sig.superimpose(&self.sig.record_signature(r.key, &r.attrs));
            }
            group_sigs.push(sig.clone());
            buckets.push(Bucket::new(
                sig_size,
                SigPayload::GroupSig {
                    sig,
                    first_record: (g * self.group_len as usize) as u32,
                    group_len: frame.len() as u32,
                },
            ));
            for (j, r) in frame.iter().enumerate() {
                buckets.push(Bucket::new(
                    data_size,
                    SigPayload::Data {
                        key: r.key,
                        record_index: (g * self.group_len as usize + j) as u32,
                        attrs: r.attrs.clone(),
                    },
                ));
            }
        }
        Ok(IntegratedSystem {
            channel: Channel::new(buckets)?,
            sig: self.sig,
            num_records: dataset.len() as u32,
            data_size: Ticks::from(data_size),
            group_len: self.group_len,
            table: Arc::new(SigTable::build(&group_sigs)),
        })
    }
}

impl System for IntegratedSystem {
    type Payload = SigPayload;
    type Machine = IntegratedMachine;

    fn scheme_name(&self) -> &'static str {
        "integrated-signature"
    }

    fn channel(&self) -> &Channel<SigPayload> {
        &self.channel
    }

    fn channel_mut(&mut self) -> &mut Channel<SigPayload> {
        &mut self.channel
    }

    fn query(&self, key: Key) -> IntegratedMachine {
        IntegratedMachine {
            key,
            query: self.sig.query_signature(key),
            data_size: self.data_size,
            false_drops: 0,
            in_group: 0,
            group_matched: false,
            coverage: Coverage::new(self.num_records),
            frame_len: self.group_len,
            table: Arc::clone(&self.table),
        }
    }
}

/// Client protocol for integrated signatures: match the frame signature;
/// doze over non-matching frames whole; scan matching frames record by
/// record.
#[derive(Debug, Clone)]
pub struct IntegratedMachine {
    key: Key,
    query: Signature,
    data_size: Ticks,
    false_drops: u32,
    /// Remaining data buckets of the frame being scanned.
    in_group: u32,
    /// Whether the current frame's signature matched (scanning) or we are
    /// just aligning past data buckets after tune-in.
    group_matched: bool,
    /// Records ruled out so far; absence is concluded at full coverage.
    coverage: Coverage,
    /// Nominal frame width: frame `g` starts at record `g * frame_len`, so
    /// a `GroupSig`'s table row is `first_record / frame_len`.
    frame_len: u32,
    /// The broadcast's frame signatures, shared with the system.
    table: Arc<SigTable>,
}

impl ProtocolMachine<SigPayload> for IntegratedMachine {
    fn start(&mut self, _tune_in: Ticks) -> Action {
        self.coverage.clear();
        self.false_drops = 0;
        self.in_group = 0;
        self.group_matched = false;
        Action::ReadNext
    }

    /// Frame and record signatures are index structure; only record
    /// downloads count as data reads.
    fn bucket_kind(&self, payload: &SigPayload) -> bda_core::BucketKind {
        match payload {
            SigPayload::Data { .. } => bda_core::BucketKind::Data,
            _ => bda_core::BucketKind::Index,
        }
    }

    /// A corrupted bucket stays uncovered (it will be re-examined on a
    /// later cycle); realign on the next frame signature meanwhile.
    fn on_corrupt(&mut self, _meta: BucketMeta) -> Action {
        self.in_group = 0;
        self.group_matched = false;
        Action::ReadNext
    }

    /// Coverage, group position, and the query signature's frame geometry
    /// are all bound to the build-time program; a rebuilt program needs a
    /// fresh machine re-aligned on the new frame signatures.
    fn on_stale(&mut self, _meta: BucketMeta) -> StaleResponse {
        StaleResponse::Respawn
    }

    fn on_bucket(&mut self, payload: &SigPayload, meta: BucketMeta) -> Action {
        match payload {
            SigPayload::GroupSig {
                sig,
                first_record,
                group_len,
            } => {
                if sig.matches(&self.query) {
                    self.in_group = *group_len;
                    self.group_matched = true;
                    Action::ReadNext
                } else {
                    // Superimposed codes have no false negatives: a
                    // non-matching frame signature rules out the whole
                    // frame at once.
                    self.coverage.mark_range(*first_record, *group_len);
                    if self.coverage.is_full() {
                        Action::Finish(Verdict::not_found().with_false_drops(self.false_drops))
                    } else {
                        // Doze over the whole frame.
                        Action::DozeTo(meta.end + Ticks::from(*group_len) * self.data_size)
                    }
                }
            }
            SigPayload::Data {
                key, record_index, ..
            } => {
                if *key == self.key {
                    // (Alignment reads may legitimately land on the target.)
                    return Action::Finish(Verdict::found().with_false_drops(self.false_drops));
                }
                if self.group_matched {
                    self.in_group -= 1;
                    self.false_drops += 1;
                    if self.in_group == 0 {
                        self.group_matched = false;
                    }
                }
                self.coverage.mark(*record_index);
                if self.coverage.is_full() {
                    Action::Finish(Verdict::not_found().with_false_drops(self.false_drops))
                } else {
                    Action::ReadNext
                }
            }
            SigPayload::RecordSig { .. } => {
                debug_assert!(
                    false,
                    "record signatures do not appear in integrated layout"
                );
                Action::ReadNext
            }
        }
    }

    /// Bulk-consume the frame sift: a non-matching frame signature is a
    /// mark-range and frame-length doze, and even a false-dropping frame —
    /// its signature matched, so every data bucket gets downloaded — is a
    /// mechanical run of count-and-mark reads. Stop only on a genuine
    /// decision point — the target's data bucket, the read that would
    /// complete coverage, a corrupted transmission, or the probe budget —
    /// and leave that bucket to the slow path.
    fn fast_forward(&mut self, ctx: &mut FastForward<'_, SigPayload>) {
        while ctx.can_read() && !ctx.next_corrupt() {
            match ctx.peek() {
                SigPayload::GroupSig {
                    first_record,
                    group_len,
                    ..
                } => {
                    let (first, len) = (*first_record, *group_len);
                    let g = (first / self.frame_len) as usize;
                    let hit = self.table.matches(g, &self.query);
                    if !hit && self.coverage.would_fill_range(first, len) {
                        return;
                    }
                    if hit {
                        self.in_group = len;
                        self.group_matched = true;
                        ctx.read(bda_core::BucketKind::Index);
                    } else {
                        self.coverage.mark_range(first, len);
                        ctx.read(bda_core::BucketKind::Index);
                        ctx.doze_buckets(len as usize);
                    }
                }
                SigPayload::Data {
                    key, record_index, ..
                } => {
                    let r = *record_index;
                    if *key == self.key || self.coverage.would_fill(r) {
                        return;
                    }
                    if self.group_matched {
                        self.in_group -= 1;
                        self.false_drops += 1;
                        if self.in_group == 0 {
                            self.group_matched = false;
                        }
                    }
                    self.coverage.mark(r);
                    ctx.read(bda_core::BucketKind::Data);
                }
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::DynSystem;
    use bda_core::Record;

    fn ds(n: u64) -> Dataset {
        Dataset::new(
            (0..n)
                .map(|i| Record::new(Key(i * 5), vec![i * 5, i + 77]))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn layout_groups_records() {
        let d = ds(20);
        let p = Params::paper();
        let sys = IntegratedSignatureScheme::new(8).build(&d, &p).unwrap();
        // 20 records in frames of 8 → 3 frames: 8, 8, 4.
        assert_eq!(sys.channel().num_buckets(), 3 + 20);
        let lens: Vec<u32> = sys
            .channel()
            .buckets()
            .iter()
            .filter_map(|b| match &b.payload {
                SigPayload::GroupSig { group_len, .. } => Some(*group_len),
                _ => None,
            })
            .collect();
        assert_eq!(lens, vec![8, 8, 4]);
    }

    #[test]
    fn every_key_found_from_every_alignment() {
        let d = ds(40);
        let p = Params::paper();
        let sys = IntegratedSignatureScheme::new(5).build(&d, &p).unwrap();
        let cycle = sys.channel().cycle_len();
        for i in 0..40u64 {
            for s in 0..7u64 {
                let out = sys.probe(Key(i * 5), s * cycle / 7 + 3);
                assert!(out.found, "key {} slot {s}", i * 5);
                assert!(!out.aborted);
            }
        }
    }

    #[test]
    fn absent_key_terminates() {
        let d = ds(40);
        let p = Params::paper();
        let sys = IntegratedSignatureScheme::new(5).build(&d, &p).unwrap();
        let out = sys.probe(Key(3), 1000);
        assert!(!out.found);
        assert!(!out.aborted);
    }

    #[test]
    fn fewer_probes_than_simple_for_missing_keys() {
        let d = ds(200);
        let p = Params::paper();
        let int = IntegratedSignatureScheme::new(10).build(&d, &p).unwrap();
        let simple = crate::simple::SimpleSignatureScheme::new()
            .build(&d, &p)
            .unwrap();
        let pi = int.probe(Key(3), 0).probes;
        let ps = simple.probe(Key(3), 0).probes;
        assert!(
            pi < ps / 3,
            "integrated probes {pi} should be ≪ simple probes {ps}"
        );
    }
}
