//! # bda-signature — signature indexing for broadcast channels
//!
//! Implements the signature-based filtering schemes of Lee & Lee (*Using
//! signature techniques for information filtering in wireless and mobile
//! environments*, 1996), of which the paper evaluates the **simple
//! signature** scheme (§2.3): every data bucket's broadcast is preceded by
//! a small *signature bucket* holding a superimposed code of the record —
//! each attribute is hashed to a sparse random bit string and the strings
//! are OR-ed together. A client matches the query signature against each
//! record signature ( `rec & query == query` ) and downloads only data
//! buckets whose signature matches; *false drops* occur when the
//! superimposed code matches but the record does not.
//!
//! Because the only per-record overhead is the tiny signature, the cycle —
//! and hence access time — is barely longer than flat broadcast (best of
//! all indexing schemes), while tuning time is linear in the number of
//! records (the client examines every signature) plus the false-drop cost:
//! the two tradeoffs the paper analyses (signature length vs. tuning time,
//! access vs. tuning).
//!
//! The other two schemes of Lee & Lee are implemented as extensions:
//!
//! * [`integrated::IntegratedSignatureScheme`] — one signature summarizes a
//!   *frame* of consecutive records; a non-matching frame is skipped whole.
//! * [`multilevel::MultiLevelSignatureScheme`] — integrated signatures over
//!   frames **plus** simple signatures per record.

pub mod integrated;
pub mod multilevel;
pub mod sig;
pub mod simple;

pub use integrated::{IntegratedSignatureScheme, IntegratedSystem};
pub use multilevel::{MultiLevelSignatureScheme, MultiLevelSystem};
pub use sig::{SigParams, SigTable, Signature};
pub use simple::{
    QueryTarget, SigPayload, SimpleSignatureDisksScheme, SimpleSignatureScheme,
    SimpleSignatureSystem,
};
