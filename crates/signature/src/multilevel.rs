//! Multi-level signature scheme (extension; Lee & Lee 1996).
//!
//! Combines both signature granularities: an integrated signature per frame
//! *and* a simple signature per record. A non-matching frame is skipped
//! whole (integrated behaviour); within a matching frame the per-record
//! signatures filter individual data buckets (simple behaviour), so false
//! drops cost a record signature rather than a whole data bucket.

use std::sync::Arc;

use bda_core::{
    Action, Bucket, BucketMeta, Channel, Coverage, Dataset, FastForward, Key, Params,
    ProtocolMachine, Result, Scheme, StaleResponse, System, Ticks, Verdict,
};

use crate::sig::{SigParams, SigTable, Signature};
use crate::simple::SigPayload;

/// The multi-level signature scheme.
#[derive(Debug, Clone, Copy)]
pub struct MultiLevelSignatureScheme {
    sig: SigParams,
    group_len: u32,
}

impl Default for MultiLevelSignatureScheme {
    fn default() -> Self {
        MultiLevelSignatureScheme {
            sig: SigParams::default(),
            group_len: 8,
        }
    }
}

impl MultiLevelSignatureScheme {
    /// Multi-level signatures over frames of `group_len` records (≥ 1).
    pub fn new(group_len: u32) -> Self {
        MultiLevelSignatureScheme {
            sig: SigParams::default(),
            group_len: group_len.max(1),
        }
    }

    /// Override the signature parameters.
    pub fn with_params(mut self, sig: SigParams) -> Self {
        self.sig = sig;
        self
    }
}

/// A built multi-level-signature broadcast.
#[derive(Debug)]
pub struct MultiLevelSystem {
    channel: Channel<SigPayload>,
    sig: SigParams,
    num_records: u32,
    data_size: Ticks,
    sig_size: Ticks,
    /// Nominal frame width (every frame but the last).
    group_len: u32,
    /// Frame signatures in frame order, packed for fast-forward matching.
    groups: Arc<SigTable>,
    /// Record signatures in record order, likewise packed.
    records: Arc<SigTable>,
}

impl Scheme for MultiLevelSignatureScheme {
    type System = MultiLevelSystem;

    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System> {
        params.validate()?;
        let sig_size = params.header_size + self.sig.sig_bytes;
        let data_size = params.data_bucket_size();
        let mut buckets = Vec::new();
        let mut group_sigs = Vec::new();
        let mut all_record_sigs = Vec::with_capacity(dataset.len());
        for (g, frame) in dataset
            .records()
            .chunks(self.group_len as usize)
            .enumerate()
        {
            let mut group_sig = Signature::zero(self.sig.bits());
            let record_sigs: Vec<Signature> = frame
                .iter()
                .map(|r| self.sig.record_signature(r.key, &r.attrs))
                .collect();
            for s in &record_sigs {
                group_sig.superimpose(s);
            }
            group_sigs.push(group_sig.clone());
            all_record_sigs.extend(record_sigs.iter().cloned());
            buckets.push(Bucket::new(
                sig_size,
                SigPayload::GroupSig {
                    sig: group_sig,
                    first_record: (g * self.group_len as usize) as u32,
                    group_len: frame.len() as u32,
                },
            ));
            for (j, (r, s)) in frame.iter().zip(record_sigs).enumerate() {
                let record_index = (g * self.group_len as usize + j) as u32;
                buckets.push(Bucket::new(
                    sig_size,
                    SigPayload::RecordSig {
                        sig: s,
                        record_index,
                    },
                ));
                buckets.push(Bucket::new(
                    data_size,
                    SigPayload::Data {
                        key: r.key,
                        record_index,
                        attrs: r.attrs.clone(),
                    },
                ));
            }
        }
        Ok(MultiLevelSystem {
            channel: Channel::new(buckets)?,
            sig: self.sig,
            num_records: dataset.len() as u32,
            data_size: Ticks::from(data_size),
            sig_size: Ticks::from(sig_size),
            group_len: self.group_len,
            groups: Arc::new(SigTable::build(&group_sigs)),
            records: Arc::new(SigTable::build(&all_record_sigs)),
        })
    }
}

impl System for MultiLevelSystem {
    type Payload = SigPayload;
    type Machine = MultiLevelMachine;

    fn scheme_name(&self) -> &'static str {
        "multilevel-signature"
    }

    fn channel(&self) -> &Channel<SigPayload> {
        &self.channel
    }

    fn channel_mut(&mut self) -> &mut Channel<SigPayload> {
        &mut self.channel
    }

    fn query(&self, key: Key) -> MultiLevelMachine {
        MultiLevelMachine {
            key,
            query: self.sig.query_signature(key),
            data_size: self.data_size,
            sig_size: self.sig_size,
            false_drops: 0,
            in_group: 0,
            scanning: false,
            checking_data: false,
            coverage: Coverage::new(self.num_records),
            frame_len: self.group_len,
            groups: Arc::clone(&self.groups),
            records: Arc::clone(&self.records),
        }
    }
}

/// Client protocol for the multi-level scheme.
#[derive(Debug, Clone)]
pub struct MultiLevelMachine {
    key: Key,
    query: Signature,
    data_size: Ticks,
    sig_size: Ticks,
    false_drops: u32,
    /// Remaining records of the frame being scanned.
    in_group: u32,
    /// Whether we are inside a matched frame.
    scanning: bool,
    /// Whether the next bucket should be the data of a matched record sig.
    checking_data: bool,
    /// Records ruled out so far; absence is concluded at full coverage.
    coverage: Coverage,
    /// Nominal frame width: frame `g` starts at record `g * frame_len`, so
    /// a `GroupSig`'s table row is `first_record / frame_len`.
    frame_len: u32,
    /// The broadcast's frame signatures, shared with the system.
    groups: Arc<SigTable>,
    /// The broadcast's record signatures, shared with the system.
    records: Arc<SigTable>,
}

impl MultiLevelMachine {
    fn finish_or_continue(&mut self) -> Action {
        if self.in_group == 0 {
            self.scanning = false;
        }
        if self.coverage.is_full() {
            Action::Finish(Verdict::not_found().with_false_drops(self.false_drops))
        } else {
            Action::ReadNext
        }
    }
}

impl ProtocolMachine<SigPayload> for MultiLevelMachine {
    fn start(&mut self, _tune_in: Ticks) -> Action {
        self.coverage.clear();
        self.false_drops = 0;
        self.in_group = 0;
        self.scanning = false;
        self.checking_data = false;
        Action::ReadNext
    }

    /// Every signature level is index structure; only record downloads
    /// count as data reads.
    fn bucket_kind(&self, payload: &SigPayload) -> bda_core::BucketKind {
        match payload {
            SigPayload::Data { .. } => bda_core::BucketKind::Data,
            _ => bda_core::BucketKind::Index,
        }
    }

    /// A corrupted bucket stays uncovered (re-examined on a later cycle);
    /// realign on the next frame signature meanwhile.
    fn on_corrupt(&mut self, _meta: BucketMeta) -> Action {
        self.in_group = 0;
        self.scanning = false;
        self.checking_data = false;
        Action::ReadNext
    }

    /// Coverage and the multi-level frame geometry are bound to the
    /// build-time program; respawn re-aligns on the new program's frames.
    fn on_stale(&mut self, _meta: BucketMeta) -> StaleResponse {
        StaleResponse::Respawn
    }

    fn on_bucket(&mut self, payload: &SigPayload, meta: BucketMeta) -> Action {
        match payload {
            SigPayload::GroupSig {
                sig,
                first_record,
                group_len,
            } => {
                if sig.matches(&self.query) {
                    self.in_group = *group_len;
                    self.scanning = true;
                    Action::ReadNext
                } else {
                    // No false negatives: the whole frame is ruled out.
                    self.coverage.mark_range(*first_record, *group_len);
                    if self.coverage.is_full() {
                        Action::Finish(Verdict::not_found().with_false_drops(self.false_drops))
                    } else {
                        // Doze over the frame: group_len × (sig + data).
                        Action::DozeTo(
                            meta.end + Ticks::from(*group_len) * (self.sig_size + self.data_size),
                        )
                    }
                }
            }
            SigPayload::RecordSig { sig, record_index } => {
                if !self.scanning {
                    // Alignment read after tune-in mid-frame.
                    return Action::ReadNext;
                }
                self.in_group -= 1;
                if sig.matches(&self.query) {
                    self.checking_data = true;
                    Action::ReadNext
                } else {
                    self.coverage.mark(*record_index);
                    if self.coverage.is_full() {
                        return Action::Finish(
                            Verdict::not_found().with_false_drops(self.false_drops),
                        );
                    }
                    if self.in_group == 0 {
                        self.scanning = false;
                    }
                    // Doze over this record's data bucket.
                    Action::DozeTo(meta.end + self.data_size)
                }
            }
            SigPayload::Data {
                key, record_index, ..
            } => {
                if *key == self.key {
                    // (Alignment reads may legitimately land on the target.)
                    return Action::Finish(Verdict::found().with_false_drops(self.false_drops));
                }
                if std::mem::take(&mut self.checking_data) {
                    self.false_drops += 1;
                }
                self.coverage.mark(*record_index);
                self.finish_or_continue()
            }
        }
    }

    /// Bulk-consume both granularities of the sift: non-matching frame
    /// signatures are skipped whole (frame-length doze over `group_len`
    /// record-signature/data pairs); inside a matched frame, non-matching
    /// record signatures are skipped record by record, and even a false
    /// drop — record signature matched, data bucket downloaded — is a
    /// mechanical count-and-mark sequence. Stop only on a genuine decision
    /// point — the target's data bucket, the read that would complete
    /// coverage, a corrupted transmission, or the probe budget — and leave
    /// that bucket to the slow path.
    fn fast_forward(&mut self, ctx: &mut FastForward<'_, SigPayload>) {
        while ctx.can_read() && !ctx.next_corrupt() {
            match ctx.peek() {
                SigPayload::GroupSig {
                    first_record,
                    group_len,
                    ..
                } => {
                    let (first, len) = (*first_record, *group_len);
                    let g = (first / self.frame_len) as usize;
                    let hit = self.groups.matches(g, &self.query);
                    if !hit && self.coverage.would_fill_range(first, len) {
                        return;
                    }
                    if hit {
                        self.in_group = len;
                        self.scanning = true;
                        ctx.read(bda_core::BucketKind::Index);
                    } else {
                        self.coverage.mark_range(first, len);
                        ctx.read(bda_core::BucketKind::Index);
                        ctx.doze_buckets(2 * len as usize);
                    }
                }
                SigPayload::RecordSig { record_index, .. } if !self.checking_data => {
                    if !self.scanning {
                        // Alignment read after tune-in mid-frame.
                        ctx.read(bda_core::BucketKind::Index);
                        continue;
                    }
                    let r = *record_index;
                    let hit = self.records.matches(r as usize, &self.query);
                    if !hit && self.coverage.would_fill(r) {
                        return;
                    }
                    self.in_group -= 1;
                    if hit {
                        self.checking_data = true;
                        ctx.read(bda_core::BucketKind::Index);
                    } else {
                        self.coverage.mark(r);
                        if self.in_group == 0 {
                            self.scanning = false;
                        }
                        ctx.read(bda_core::BucketKind::Index);
                        ctx.doze_buckets(1);
                    }
                }
                SigPayload::Data {
                    key, record_index, ..
                } => {
                    let r = *record_index;
                    if *key == self.key || self.coverage.would_fill(r) {
                        return;
                    }
                    if std::mem::take(&mut self.checking_data) {
                        self.false_drops += 1;
                    }
                    self.coverage.mark(r);
                    if self.in_group == 0 {
                        self.scanning = false;
                    }
                    ctx.read(bda_core::BucketKind::Data);
                }
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::DynSystem;
    use bda_core::Record;

    fn ds(n: u64) -> Dataset {
        Dataset::new(
            (0..n)
                .map(|i| Record::new(Key(i * 5), vec![i * 5, i + 31]))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn layout_interleaves_all_three_bucket_kinds() {
        let d = ds(12);
        let p = Params::paper();
        let sys = MultiLevelSignatureScheme::new(4).build(&d, &p).unwrap();
        // 3 frames × (1 group sig + 4 × (rec sig + data)) = 27.
        assert_eq!(sys.channel().num_buckets(), 27);
        assert!(matches!(
            sys.channel().bucket(0).payload,
            SigPayload::GroupSig { .. }
        ));
        assert!(matches!(
            sys.channel().bucket(1).payload,
            SigPayload::RecordSig { .. }
        ));
        assert!(matches!(
            sys.channel().bucket(2).payload,
            SigPayload::Data { .. }
        ));
    }

    #[test]
    fn every_key_found_from_every_alignment() {
        let d = ds(30);
        let p = Params::paper();
        let sys = MultiLevelSignatureScheme::new(4).build(&d, &p).unwrap();
        let cycle = sys.channel().cycle_len();
        for i in 0..30u64 {
            for s in 0..8u64 {
                let out = sys.probe(Key(i * 5), s * cycle / 8 + 29);
                assert!(out.found, "key {} slot {s}", i * 5);
                assert!(!out.aborted);
            }
        }
    }

    #[test]
    fn absent_keys_terminate_without_abort() {
        let d = ds(30);
        let p = Params::paper();
        let sys = MultiLevelSignatureScheme::new(4).build(&d, &p).unwrap();
        for miss in [2u64, 13, 999] {
            let out = sys.probe(Key(miss), 500);
            assert!(!out.found);
            assert!(!out.aborted);
        }
    }

    #[test]
    fn false_drops_cost_less_tuning_than_integrated() {
        // With identical (deliberately collision-prone) signatures, the
        // multi-level scheme reads record signatures instead of whole data
        // buckets inside matched frames, so tuning is lower.
        let d = ds(400);
        let p = Params::paper();
        let sigp = SigParams {
            sig_bytes: 2,
            bits_per_attr: 3,
        };
        let ml = MultiLevelSignatureScheme::new(10)
            .with_params(sigp)
            .build(&d, &p)
            .unwrap();
        let int = crate::integrated::IntegratedSignatureScheme::new(10)
            .with_params(sigp)
            .build(&d, &p)
            .unwrap();
        let tuning = |out: bda_core::AccessOutcome| {
            assert!(!out.aborted);
            out.tuning
        };
        let mut ml_t = 0u64;
        let mut int_t = 0u64;
        for miss in (0..200u64).map(|i| Key(i * 5 + 3)) {
            ml_t += tuning(ml.probe(miss, 777));
            int_t += tuning(int.probe(miss, 777));
        }
        assert!(
            ml_t < int_t,
            "multi-level tuning {ml_t} should beat integrated {int_t}"
        );
    }
}
