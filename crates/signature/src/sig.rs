//! Superimposed-coding signatures.
//!
//! "A signature is formed by hashing each field of a record into a random
//! bit string and then superimposing together all the bit strings into a
//! record signature" (§2.3). A query signature is generated the same way
//! from the queried attribute; a record *possibly* matches when its
//! signature contains every bit of the query signature.

use bda_core::Key;

/// A fixed-width bit string.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    bits: u32,
    words: Box<[u64]>,
}

impl Signature {
    /// The all-zero signature of `bits` width.
    pub fn zero(bits: u32) -> Self {
        let words = vec![0u64; bits.div_ceil(64) as usize].into_boxed_slice();
        Signature { bits, words }
    }

    /// Width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Set bit `i` (must be `< bits`).
    pub fn set(&mut self, i: u32) {
        debug_assert!(i < self.bits);
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Whether bit `i` is set.
    pub fn get(&self, i: u32) -> bool {
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Superimpose (OR) another signature of the same width.
    pub fn superimpose(&mut self, other: &Signature) {
        debug_assert_eq!(self.bits, other.bits);
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }

    /// Whether every bit of `query` is also set here — the signature-match
    /// test clients perform on each signature bucket.
    pub fn matches(&self, query: &Signature) -> bool {
        debug_assert_eq!(self.bits, query.bits);
        self.words
            .iter()
            .zip(query.words.iter())
            .all(|(w, q)| w & q == *q)
    }

    /// Number of set bits (signature weight).
    pub fn weight(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// The raw 64-bit words backing the bit string (little-endian bit
    /// order: bit `i` lives in word `i / 64`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// A flat, contiguous table of signatures for bulk matching.
///
/// The fast-forward planner tests one signature per skipped bucket; chasing
/// a `Box<[u64]>` per bucket payload would make that walk pointer-bound.
/// `SigTable` lays every signature out back to back in one `Vec<u64>` with
/// a fixed stride, so the per-row test is a short run of `(w & q) == q`
/// compares over adjacent words — the layout autovectorizes and stays in
/// cache across the thousands of rows a cycle-length scan touches.
#[derive(Debug, Clone)]
pub struct SigTable {
    words_per_sig: usize,
    words: Vec<u64>,
}

impl SigTable {
    /// Build a table from signatures of uniform width, in row order.
    pub fn build<'a, I>(sigs: I) -> Self
    where
        I: IntoIterator<Item = &'a Signature>,
    {
        let mut words_per_sig = 0;
        let mut words = Vec::new();
        for s in sigs {
            if words_per_sig == 0 {
                words_per_sig = s.words.len();
            }
            debug_assert_eq!(s.words.len(), words_per_sig, "mixed signature widths");
            words.extend_from_slice(&s.words);
        }
        SigTable {
            words_per_sig,
            words,
        }
    }

    /// Number of signatures in the table.
    pub fn len(&self) -> usize {
        self.words
            .len()
            .checked_div(self.words_per_sig)
            .unwrap_or(0)
    }

    /// Whether the table holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Whether row `i` contains every bit of `query` — identical to
    /// [`Signature::matches`] on the signature the row was built from.
    #[inline]
    pub fn matches(&self, i: usize, query: &Signature) -> bool {
        let row = &self.words[i * self.words_per_sig..(i + 1) * self.words_per_sig];
        row.iter().zip(query.words.iter()).all(|(w, q)| w & q == *q)
    }
}

/// Signature-generation parameters.
///
/// `sig_bytes` is the on-air signature length (the `It` of the paper's
/// analysis is `header + sig_bytes`); `bits_per_attr` is how many bits each
/// attribute's hash sets. Shorter signatures shrink the cycle (better
/// access time) but collide more (more false drops → worse tuning time) —
/// the tradeoff of §2.3, measurable with the `ablation_siglen` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigParams {
    /// Signature length in bytes.
    pub sig_bytes: u32,
    /// Bits set per attribute hash (`weight` of each attribute string).
    pub bits_per_attr: u32,
}

impl Default for SigParams {
    fn default() -> Self {
        SigParams {
            sig_bytes: 16,
            bits_per_attr: 4,
        }
    }
}

/// SplitMix64 step used to derive bit positions from attribute values.
#[inline]
fn mix_step(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SigParams {
    /// Signature width in bits.
    pub fn bits(&self) -> u32 {
        self.sig_bytes * 8
    }

    /// Hash one attribute value into its sparse bit string.
    pub fn attr_signature(&self, value: u64) -> Signature {
        let mut sig = Signature::zero(self.bits());
        let mut state = value ^ 0xA076_1D64_78BD_642F;
        let mut set = 0;
        // Draw distinct bit positions; duplicates are redrawn so every
        // attribute contributes exactly `bits_per_attr` bits (as long as
        // the signature is wide enough).
        let want = self.bits_per_attr.min(self.bits());
        let mut guard = 0;
        while set < want {
            let pos = (mix_step(&mut state) % u64::from(self.bits())) as u32;
            if !sig.get(pos) {
                sig.set(pos);
                set += 1;
            }
            guard += 1;
            if guard > 64 * want {
                break; // pathological widths; keep whatever we have
            }
        }
        sig
    }

    /// The record signature: the key's bit string superimposed with every
    /// attribute's bit string.
    pub fn record_signature(&self, key: Key, attrs: &[u64]) -> Signature {
        let mut sig = self.attr_signature(key.value());
        for &a in attrs {
            sig.superimpose(&self.attr_signature(a));
        }
        sig
    }

    /// The query signature for a primary-key lookup.
    pub fn query_signature(&self, key: Key) -> Signature {
        self.attr_signature(key.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_set_get() {
        let mut s = Signature::zero(130);
        assert_eq!(s.bits(), 130);
        assert_eq!(s.weight(), 0);
        s.set(0);
        s.set(64);
        s.set(129);
        assert!(s.get(0) && s.get(64) && s.get(129));
        assert!(!s.get(1));
        assert_eq!(s.weight(), 3);
    }

    #[test]
    fn superimpose_is_union() {
        let p = SigParams::default();
        let a = p.attr_signature(1);
        let b = p.attr_signature(2);
        let mut u = a.clone();
        u.superimpose(&b);
        assert!(u.matches(&a));
        assert!(u.matches(&b));
        assert!(u.weight() <= a.weight() + b.weight());
    }

    #[test]
    fn attr_signature_is_deterministic_with_requested_weight() {
        let p = SigParams::default();
        let a = p.attr_signature(42);
        assert_eq!(a, p.attr_signature(42));
        assert_eq!(a.weight(), p.bits_per_attr);
        assert_ne!(a, p.attr_signature(43));
    }

    #[test]
    fn no_false_negatives_by_construction() {
        let p = SigParams {
            sig_bytes: 8,
            bits_per_attr: 3,
        };
        for k in 0..500u64 {
            let rec = p.record_signature(Key(k), &[k, k + 1, 999]);
            assert!(
                rec.matches(&p.query_signature(Key(k))),
                "record signature must contain its key's bits"
            );
        }
    }

    #[test]
    fn false_drop_rate_is_small_but_nonzero() {
        let p = SigParams::default();
        let query = p.query_signature(Key(123_456));
        let mut drops = 0;
        let n = 50_000;
        for k in 0..n {
            let rec = p.record_signature(Key(k), &[k, k * 7, k % 17, k + 3]);
            if rec.matches(&query) {
                drops += 1;
            }
        }
        // (weight/bits)^w ≈ (20/128)^4 ≈ 6e-4 → expect tens of matches.
        assert!(drops > 0, "superimposed codes must collide eventually");
        assert!(drops < n / 100, "but rarely: {drops}/{n}");
    }

    #[test]
    fn shorter_signatures_collide_more() {
        let long = SigParams {
            sig_bytes: 16,
            bits_per_attr: 4,
        };
        let short = SigParams {
            sig_bytes: 2,
            bits_per_attr: 4,
        };
        let count = |p: &SigParams| {
            let q = p.query_signature(Key(9_999_999));
            (0..20_000u64)
                .filter(|&k| p.record_signature(Key(k), &[k, k + 1, k + 2]).matches(&q))
                .count()
        };
        assert!(count(&short) > 10 * count(&long).max(1));
    }

    #[test]
    fn degenerate_width_does_not_loop() {
        let p = SigParams {
            sig_bytes: 1,
            bits_per_attr: 32,
        };
        let s = p.attr_signature(5);
        assert_eq!(s.weight(), 8, "can set at most all 8 bits");
    }
}
