//! The simple signature scheme (paper §2.3).
//!
//! Broadcast layout: `sig(0) data(0) sig(1) data(1) …` — "each broadcast of
//! a data bucket is preceded by a broadcast of the signature bucket, which
//! contains the signature of the data record". Clients sift through every
//! signature bucket, dozing over data buckets whose signature does not
//! match.

use std::sync::Arc;

use bda_core::{
    Action, Bucket, BucketMeta, Channel, Coverage, Dataset, DiskConfig, DiskLayout, FastForward,
    Key, Params, ProtocolMachine, Result, Scheme, StaleResponse, System, Ticks, Verdict,
};

use crate::sig::{SigParams, SigTable, Signature};

/// Bucket payload shared by all signature-based schemes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SigPayload {
    /// A per-record signature bucket.
    RecordSig {
        /// The record's superimposed signature.
        sig: Signature,
        /// Position of the signed record (diagnostics).
        record_index: u32,
    },
    /// An integrated (frame) signature bucket summarizing `group_len`
    /// following records (integrated / multi-level schemes only).
    GroupSig {
        /// Superimposition of the frame's record signatures.
        sig: Signature,
        /// Position of the frame's first record.
        first_record: u32,
        /// Number of records in the frame.
        group_len: u32,
    },
    /// A data bucket.
    Data {
        /// The record's primary key.
        key: Key,
        /// Position of the record (diagnostics).
        record_index: u32,
        /// The record's attribute values — what a downloading client gets
        /// to inspect (needed to verify attribute-query matches).
        attrs: Box<[u64]>,
    },
}

/// What a signature query is looking for.
///
/// Signatures are content-based (one bit string per attribute value), so
/// besides primary-key lookups they support **attribute queries**: find a
/// record carrying a given attribute value — the multi-attribute filtering
/// use case of Lee & Lee and of "power conservative multi-attribute
/// queries" (the paper's reference \[4\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryTarget {
    /// Match the record with this primary key.
    Key(Key),
    /// Match the first record carrying this attribute value.
    Attribute(u64),
}

impl QueryTarget {
    /// Whether a downloaded record satisfies the query.
    pub fn satisfied_by(&self, key: Key, attrs: &[u64]) -> bool {
        match *self {
            QueryTarget::Key(k) => key == k,
            QueryTarget::Attribute(v) => key.value() == v || attrs.contains(&v),
        }
    }
}

/// The simple signature scheme.
///
/// ```
/// use bda_core::{Dataset, DynSystem, Params, Record, Scheme, System};
/// use bda_signature::SimpleSignatureScheme;
///
/// let dataset = Dataset::new(
///     (0..40).map(|i| Record::new(bda_core::Key(i), vec![i, i + 100])).collect(),
/// ).unwrap();
/// let system = SimpleSignatureScheme::new().build(&dataset, &Params::paper()).unwrap();
/// // Key lookup:
/// assert!(DynSystem::probe(&system, bda_core::Key(7), 5_000).found);
/// // Attribute query — signatures are content-based:
/// let m = system.attr_query(107);
/// let out = bda_core::machine::run_machine(System::channel(&system), m, 5_000);
/// assert!(out.found);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleSignatureScheme {
    sig: SigParams,
}

impl SimpleSignatureScheme {
    /// Simple signature indexing with default signature parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the signature parameters (length / bits per attribute).
    pub fn with_params(sig: SigParams) -> Self {
        SimpleSignatureScheme { sig }
    }
}

/// A built simple-signature broadcast.
#[derive(Debug)]
pub struct SimpleSignatureSystem {
    channel: Channel<SigPayload>,
    sig: SigParams,
    num_records: u32,
    data_size: Ticks,
    /// Record signatures in record order, packed for fast-forward matching.
    table: Arc<SigTable>,
}

impl SimpleSignatureSystem {
    /// The signature parameters in use.
    pub fn sig_params(&self) -> SigParams {
        self.sig
    }

    /// On-air size of one signature bucket (`It`).
    pub fn sig_bucket_size(&self, params: &Params) -> u32 {
        params.header_size + self.sig.sig_bytes
    }
}

impl Scheme for SimpleSignatureScheme {
    type System = SimpleSignatureSystem;

    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System> {
        self.build_occurrences(dataset, params, (0..dataset.len() as u32).collect())
    }
}

impl SimpleSignatureScheme {
    /// Lay out one `(signature, data)` bucket pair per entry of
    /// `occurrences` (record indices, possibly repeated) — the shared
    /// backend of the classic once-per-record cycle and the broadcast-disk
    /// repetition layout. The sifting protocol is indifferent to
    /// repetition: coverage is keyed by `record_index` and marking is
    /// idempotent, and the [`SigTable`] keeps one row per *record*, so
    /// every occurrence of a record carries (and is matched against) the
    /// same signature.
    fn build_occurrences(
        &self,
        dataset: &Dataset,
        params: &Params,
        occurrences: Vec<u32>,
    ) -> Result<SimpleSignatureSystem> {
        params.validate()?;
        let sig_size = params.header_size + self.sig.sig_bytes;
        let data_size = params.data_bucket_size();
        let sigs: Vec<Signature> = dataset
            .records()
            .iter()
            .map(|r| self.sig.record_signature(r.key, &r.attrs))
            .collect();
        let mut buckets = Vec::with_capacity(2 * occurrences.len());
        for i in occurrences {
            let r = dataset.record(i as usize);
            buckets.push(Bucket::new(
                sig_size,
                SigPayload::RecordSig {
                    sig: sigs[i as usize].clone(),
                    record_index: i,
                },
            ));
            buckets.push(Bucket::new(
                data_size,
                SigPayload::Data {
                    key: r.key,
                    record_index: i,
                    attrs: r.attrs.clone(),
                },
            ));
        }
        Ok(SimpleSignatureSystem {
            channel: Channel::new(buckets)?,
            sig: self.sig,
            num_records: dataset.len() as u32,
            data_size: Ticks::from(data_size),
            table: Arc::new(SigTable::build(&sigs)),
        })
    }
}

/// Simple signature indexing over a broadcast-disk repetition schedule
/// (see `bda_core::disks`): hot records' `(signature, data)` pairs appear
/// several times per cycle, evenly spaced. At `D = 1` the built program is
/// bit-identical to [`SimpleSignatureScheme`]'s.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleSignatureDisksScheme {
    sig: SigParams,
    config: DiskConfig,
}

impl SimpleSignatureDisksScheme {
    /// Signature sifting stratified across `config` disks.
    pub fn new(config: DiskConfig) -> Self {
        SimpleSignatureDisksScheme {
            sig: SigParams::default(),
            config,
        }
    }

    /// Override the signature parameters (length / bits per attribute).
    pub fn with_params(sig: SigParams, config: DiskConfig) -> Self {
        SimpleSignatureDisksScheme { sig, config }
    }
}

impl Scheme for SimpleSignatureDisksScheme {
    type System = SimpleSignatureSystem;

    fn build(&self, dataset: &Dataset, params: &Params) -> Result<Self::System> {
        let layout = DiskLayout::new(dataset.len(), &self.config);
        SimpleSignatureScheme { sig: self.sig }.build_occurrences(
            dataset,
            params,
            layout.schedule().sequence().collect(),
        )
    }
}

impl System for SimpleSignatureSystem {
    type Payload = SigPayload;
    type Machine = SimpleSigMachine;

    fn scheme_name(&self) -> &'static str {
        "signature"
    }

    fn channel(&self) -> &Channel<SigPayload> {
        &self.channel
    }

    fn channel_mut(&mut self) -> &mut Channel<SigPayload> {
        &mut self.channel
    }

    fn query(&self, key: Key) -> SimpleSigMachine {
        self.machine(QueryTarget::Key(key), self.sig.query_signature(key))
    }
}

impl SimpleSignatureSystem {
    /// Start an **attribute query**: retrieve the first broadcast record
    /// carrying attribute value `value`. Run it with
    /// [`bda_core::machine::run_machine`] or [`bda_core::Walk`].
    pub fn attr_query(&self, value: u64) -> SimpleSigMachine {
        self.machine(
            QueryTarget::Attribute(value),
            self.sig.attr_signature(value),
        )
    }

    fn machine(&self, target: QueryTarget, query: Signature) -> SimpleSigMachine {
        SimpleSigMachine {
            target,
            query,
            data_size: self.data_size,
            false_drops: 0,
            checking_data: false,
            coverage: Coverage::new(self.num_records),
            table: Arc::clone(&self.table),
        }
    }
}

/// Client protocol for simple signature indexing (paper §2.3).
#[derive(Debug, Clone)]
pub struct SimpleSigMachine {
    target: QueryTarget,
    query: Signature,
    data_size: Ticks,
    false_drops: u32,
    checking_data: bool,
    /// Records ruled out so far; absence is concluded at full coverage
    /// (sound even when corrupted reads leave holes — see
    /// [`bda_core::Coverage`]).
    coverage: Coverage,
    /// The broadcast's record signatures, shared with the system; row `r`
    /// equals the signature in record `r`'s `RecordSig` bucket.
    table: Arc<SigTable>,
}

impl ProtocolMachine<SigPayload> for SimpleSigMachine {
    fn start(&mut self, _tune_in: Ticks) -> Action {
        self.coverage.clear();
        self.false_drops = 0;
        self.checking_data = false;
        Action::ReadNext
    }

    /// Signature buckets are the scheme's index structure; only record
    /// downloads (true hits *and* false drops) count as data reads.
    fn bucket_kind(&self, payload: &SigPayload) -> bda_core::BucketKind {
        match payload {
            SigPayload::Data { .. } => bda_core::BucketKind::Data,
            _ => bda_core::BucketKind::Index,
        }
    }

    /// A corrupted bucket may have been the target's signature or data: it
    /// stays uncovered and will be re-examined on a later cycle; realign on
    /// the next signature meanwhile.
    fn on_corrupt(&mut self, _meta: BucketMeta) -> Action {
        self.checking_data = false;
        Action::ReadNext
    }

    /// Coverage is indexed by build-bound `record_index`; a rebuilt
    /// program renumbers records, so the scan restarts from scratch.
    fn on_stale(&mut self, _meta: BucketMeta) -> StaleResponse {
        StaleResponse::Respawn
    }

    fn on_bucket(&mut self, payload: &SigPayload, meta: BucketMeta) -> Action {
        match payload {
            SigPayload::RecordSig { sig, record_index } => {
                debug_assert!(!self.checking_data, "signature where data expected");
                if sig.matches(&self.query) {
                    self.checking_data = true;
                    Action::ReadNext
                } else {
                    // A non-matching signature rules its record out.
                    self.coverage.mark(*record_index);
                    if self.coverage.is_full() {
                        Action::Finish(Verdict::not_found().with_false_drops(self.false_drops))
                    } else {
                        // Doze over the data bucket to the next signature.
                        Action::DozeTo(meta.end + self.data_size)
                    }
                }
            }
            SigPayload::Data {
                key,
                attrs,
                record_index,
            } => {
                let was_checking = std::mem::take(&mut self.checking_data);
                if self.target.satisfied_by(*key, attrs) {
                    // (An alignment read can legitimately land on the
                    // target — the record contents are right there.)
                    return Action::Finish(Verdict::found().with_false_drops(self.false_drops));
                }
                if was_checking {
                    // Matching signature, wrong record: a false drop.
                    self.false_drops += 1;
                }
                // Either way this record is now ruled out.
                self.coverage.mark(*record_index);
                if self.coverage.is_full() {
                    Action::Finish(Verdict::not_found().with_false_drops(self.false_drops))
                } else {
                    Action::ReadNext
                }
            }
            SigPayload::GroupSig { .. } => {
                debug_assert!(false, "group signatures do not appear in simple layout");
                Action::ReadNext
            }
        }
    }

    /// Bulk-consume the sift loop: non-matching record signatures are
    /// mark-and-doze pairs, and even a false drop (matching signature,
    /// wrong record) is a mechanical read-count-mark sequence. Stop only
    /// on a genuine decision point — the bucket that satisfies the query,
    /// the read that would complete coverage, a corrupted transmission, or
    /// the probe budget — and leave that bucket to the slow path.
    fn fast_forward(&mut self, ctx: &mut FastForward<'_, SigPayload>) {
        while ctx.can_read() && !ctx.next_corrupt() {
            match ctx.peek() {
                SigPayload::RecordSig { record_index, .. } if !self.checking_data => {
                    let r = *record_index;
                    let hit = self.table.matches(r as usize, &self.query);
                    if !hit && self.coverage.would_fill(r) {
                        return;
                    }
                    if hit {
                        self.checking_data = true;
                        ctx.read(bda_core::BucketKind::Index);
                    } else {
                        self.coverage.mark(r);
                        ctx.read(bda_core::BucketKind::Index);
                        ctx.doze_buckets(1);
                    }
                }
                SigPayload::Data {
                    key,
                    record_index,
                    attrs,
                } => {
                    let r = *record_index;
                    if self.target.satisfied_by(*key, attrs) || self.coverage.would_fill(r) {
                        return;
                    }
                    if std::mem::take(&mut self.checking_data) {
                        self.false_drops += 1;
                    }
                    self.coverage.mark(r);
                    ctx.read(bda_core::BucketKind::Data);
                }
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::DynSystem;
    use bda_core::Record;

    fn ds(n: u64) -> Dataset {
        Dataset::new(
            (0..n)
                .map(|i| Record::new(Key(i * 5), vec![i * 5, i + 1000, i % 13]))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn layout_alternates_sig_data() {
        let d = ds(10);
        let p = Params::paper();
        let sys = SimpleSignatureScheme::new().build(&d, &p).unwrap();
        let ch = sys.channel();
        assert_eq!(ch.num_buckets(), 20);
        for (i, b) in ch.buckets().iter().enumerate() {
            if i % 2 == 0 {
                assert!(matches!(b.payload, SigPayload::RecordSig { .. }));
                assert_eq!(b.size, sys.sig_bucket_size(&p));
            } else {
                assert!(matches!(b.payload, SigPayload::Data { .. }));
                assert_eq!(b.size, p.data_bucket_size());
            }
        }
    }

    #[test]
    fn every_key_found_from_every_alignment() {
        let d = ds(40);
        let p = Params::paper();
        let sys = SimpleSignatureScheme::new().build(&d, &p).unwrap();
        let cycle = sys.channel().cycle_len();
        for i in 0..40u64 {
            for s in 0..9u64 {
                let out = sys.probe(Key(i * 5), s * cycle / 9 + 13);
                assert!(out.found, "key {} slot {s}", i * 5);
                assert!(!out.aborted);
                assert!(out.tuning <= out.access);
            }
        }
    }

    #[test]
    fn absent_key_scans_all_signatures() {
        let d = ds(40);
        let p = Params::paper();
        let sys = SimpleSignatureScheme::new().build(&d, &p).unwrap();
        let out = sys.probe(Key(7), 0);
        assert!(!out.found);
        assert!(!out.aborted);
        // At least one probe per record signature.
        assert!(out.probes >= 40, "probes={}", out.probes);
    }

    #[test]
    fn tuning_is_much_smaller_than_access() {
        let d = ds(300);
        let p = Params::paper();
        let sys = SimpleSignatureScheme::new().build(&d, &p).unwrap();
        let cycle = sys.channel().cycle_len();
        let mut acc = 0u64;
        let mut tun = 0u64;
        for i in (0..300u64).step_by(7) {
            let out = sys.probe(Key(i * 5), i * 119 % cycle);
            assert!(out.found);
            acc += out.access;
            tun += out.tuning;
        }
        // Clients doze over data buckets: tuning ≪ access (data dominates
        // the cycle, It/Dt ≈ 24/533).
        assert!(tun * 5 < acc, "tuning {tun} vs access {acc}");
    }

    #[test]
    fn false_drops_are_counted_not_fatal() {
        // Tiny signatures collide hard; correctness must be unaffected.
        let d = ds(200);
        let p = Params::paper();
        let sys = SimpleSignatureScheme::with_params(SigParams {
            sig_bytes: 1,
            bits_per_attr: 2,
        })
        .build(&d, &p)
        .unwrap();
        let mut any_drop = false;
        for i in 0..200u64 {
            let out = sys.probe(Key(i * 5), 101);
            assert!(out.found);
            any_drop |= out.false_drops > 0;
        }
        assert!(any_drop, "1-byte signatures must produce false drops");
    }

    #[test]
    fn attribute_queries_find_matching_records() {
        use bda_core::machine::run_machine;
        // Records carry attribute i+1000 — query by it.
        let d = ds(60);
        let p = Params::paper();
        let sys = SimpleSignatureScheme::new().build(&d, &p).unwrap();
        for i in 0..60u64 {
            let m = sys.attr_query(i + 1000);
            let out = run_machine(sys.channel(), m, 31 * i);
            assert!(out.found, "attribute {} not found", i + 1000);
            assert!(!out.aborted);
        }
        // Shared attribute (i % 13): any of several records satisfies.
        let m = sys.attr_query(5);
        let out = run_machine(sys.channel(), m, 0);
        assert!(out.found);
    }

    #[test]
    fn attribute_queries_reject_absent_values() {
        use bda_core::machine::run_machine;
        let d = ds(60);
        let p = Params::paper();
        let sys = SimpleSignatureScheme::new().build(&d, &p).unwrap();
        for v in [999u64, 777_777, 42_424_242] {
            let m = sys.attr_query(v);
            let out = run_machine(sys.channel(), m, 17);
            assert!(!out.found, "phantom attribute {v}");
            assert!(!out.aborted);
            assert!(out.probes >= 60, "must scan every signature");
        }
    }

    #[test]
    fn query_target_semantics() {
        let t = QueryTarget::Key(Key(5));
        assert!(t.satisfied_by(Key(5), &[1, 2]));
        assert!(!t.satisfied_by(Key(6), &[5]));
        let t = QueryTarget::Attribute(7);
        assert!(t.satisfied_by(Key(0), &[3, 7]));
        assert!(t.satisfied_by(Key(7), &[]), "the key is attribute 0");
        assert!(!t.satisfied_by(Key(0), &[3, 4]));
    }

    #[test]
    fn access_time_close_to_flat_broadcast() {
        let d = ds(200);
        let p = Params::paper();
        let sys = SimpleSignatureScheme::new().build(&d, &p).unwrap();
        // Cycle = Nr · (It + Dt): only signature bytes of overhead.
        let it = u64::from(sys.sig_bucket_size(&p));
        let dt = u64::from(p.data_bucket_size());
        assert_eq!(sys.channel().cycle_len(), 200 * (it + dt));
        assert!(it * 10 < dt, "signatures are a small fraction of a record");
    }
}
