//! Fast-forward equivalence for the signature schemes.
//!
//! A fast-forwarded walk must be indistinguishable from the bucket-by-bucket
//! walk in everything but step count: same verdict, same access and tuning
//! time, same probe and false-drop counts, and the same per-phase span
//! decomposition — on lossless and error-prone channels alike.

use bda_core::{
    run_machine_observed, AccessOutcome, Channel, Dataset, ErrorModel, Key, Params, PhaseSpans,
    ProtocolMachine, Record, RetryPolicy, Scheme, SpanRecorder, System, Ticks, Walk, WalkStep,
};
use bda_signature::{
    IntegratedSignatureScheme, MultiLevelSignatureScheme, SigPayload, SimpleSignatureScheme,
};

fn dataset(n: u64) -> Dataset {
    Dataset::new(
        (0..n)
            .map(|i| Record::new(Key(i * 3), vec![i * 3, i + 500, i % 11]))
            .collect(),
    )
    .unwrap()
}

fn run_ff<M: ProtocolMachine<SigPayload>>(
    ch: &Channel<SigPayload>,
    machine: M,
    tune_in: Ticks,
    errors: ErrorModel,
    policy: RetryPolicy,
) -> (AccessOutcome, PhaseSpans, u64) {
    let mut walk = Walk::with_recorder(ch, machine, tune_in, errors, policy, SpanRecorder::new());
    walk.set_fast_forward(true);
    let mut steps = 0u64;
    loop {
        steps += 1;
        if let WalkStep::Done(out) = walk.step() {
            return (out, walk.recorder().spans, steps);
        }
    }
}

fn check_scheme<S>(system: &S, n: u64, collapses_lossless_scan: bool)
where
    S: System<Payload = SigPayload>,
    S::Machine: Clone,
{
    let ch = system.channel();
    let cycle = ch.cycle_len();
    let keys: Vec<Key> = (0..n)
        .step_by(7)
        .map(|i| Key(i * 3))
        .chain([Key(1), Key(299)]) // absent: full-coverage scans
        .collect();
    for &key in &keys {
        for s in 0..6u64 {
            let tune_in = s * cycle / 6 + 13 * s;
            for errors in [ErrorModel::NONE, ErrorModel::new(0.15, 0x5EED)] {
                let policy = RetryPolicy::UNBOUNDED;
                let (slow, slow_spans) =
                    run_machine_observed(ch, system.query(key), tune_in, errors, policy);
                let (fast, fast_spans, steps) =
                    run_ff(ch, system.query(key), tune_in, errors, policy);
                assert_eq!(
                    slow,
                    fast,
                    "{} key {key:?} tune_in {tune_in} loss {}",
                    system.scheme_name(),
                    errors.loss_prob
                );
                assert_eq!(
                    slow_spans,
                    fast_spans,
                    "{} spans diverged for key {key:?} tune_in {tune_in}",
                    system.scheme_name()
                );
                if collapses_lossless_scan && errors.loss_prob == 0.0 && !slow.found {
                    // The whole not-found scan must collapse to a handful
                    // of wakeups: the initial probe, one fast-forwarded
                    // leap per false-dropping frame/record, and the final
                    // coverage-completing read.
                    assert!(
                        steps < u64::from(slow.probes) / 4 + 8,
                        "{}: {} steps for {} probes",
                        system.scheme_name(),
                        steps,
                        slow.probes
                    );
                }
            }
        }
    }
}

#[test]
fn simple_signature_fast_forward_is_bit_identical() {
    let d = dataset(60);
    let sys = SimpleSignatureScheme::new()
        .build(&d, &Params::paper())
        .unwrap();
    check_scheme(&sys, 60, true);
}

#[test]
fn integrated_signature_fast_forward_is_bit_identical() {
    let d = dataset(60);
    let sys = IntegratedSignatureScheme::new(8)
        .build(&d, &Params::paper())
        .unwrap();
    check_scheme(&sys, 60, true);
}

#[test]
fn multilevel_signature_fast_forward_is_bit_identical() {
    let d = dataset(60);
    let sys = MultiLevelSignatureScheme::new(8)
        .build(&d, &Params::paper())
        .unwrap();
    check_scheme(&sys, 60, true);
}

#[test]
fn fast_forward_handles_degenerate_frames_and_tiny_signatures() {
    // group_len 1 (every frame is one record) and a 1-byte signature that
    // collides hard: maximal false-drop pressure on the planner's
    // stop-before-match rule.
    let d = dataset(40);
    let sigp = bda_signature::SigParams {
        sig_bytes: 1,
        bits_per_attr: 2,
    };
    let int = IntegratedSignatureScheme::new(1)
        .with_params(sigp)
        .build(&d, &Params::paper())
        .unwrap();
    check_scheme(&int, 40, false);
    let ml = MultiLevelSignatureScheme::new(3)
        .with_params(sigp)
        .build(&d, &Params::paper())
        .unwrap();
    check_scheme(&ml, 40, false);
}
