//! Property tests for superimposed coding and the three signature schemes.

use bda_core::{Dataset, DynSystem, Key, Params, Record, Scheme};
use bda_signature::{
    IntegratedSignatureScheme, MultiLevelSignatureScheme, SigParams, SimpleSignatureScheme,
};
use proptest::prelude::*;

fn arb_records() -> impl Strategy<Value = Dataset> {
    prop::collection::btree_map(
        0u64..1 << 48,
        prop::collection::vec(any::<u64>(), 0..5),
        1..120,
    )
    .prop_map(|m| {
        Dataset::new(
            m.into_iter()
                .map(|(k, attrs)| Record::new(Key(k), attrs))
                .collect(),
        )
        .unwrap()
    })
}

fn arb_sig() -> impl Strategy<Value = SigParams> {
    (1u32..48, 1u32..8).prop_map(|(sig_bytes, bits_per_attr)| SigParams {
        sig_bytes,
        bits_per_attr,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Superimposition is monotone: a signature always matches any subset
    /// of the strings it superimposes — hence no false negatives ever.
    #[test]
    fn superimposition_is_monotone(values in prop::collection::vec(any::<u64>(), 1..10), sig in arb_sig()) {
        let mut combined = sig.attr_signature(values[0]);
        for &v in &values[1..] {
            combined.superimpose(&sig.attr_signature(v));
        }
        for &v in &values {
            prop_assert!(combined.matches(&sig.attr_signature(v)));
        }
        // Weight is bounded by the sum of the parts.
        prop_assert!(combined.weight() <= values.len() as u32 * sig.bits_per_attr.min(sig.bits()));
    }

    /// All three schemes are exact for key queries, under arbitrary
    /// signature geometry (tiny signatures only cost false drops).
    #[test]
    fn schemes_are_exact(
        ds in arb_records(),
        sig in arb_sig(),
        group in 1u32..12,
        t in 0u64..1 << 40,
        idx in any::<proptest::sample::Index>(),
        probe_key in 0u64..1 << 48,
    ) {
        let params = Params::paper();
        let systems: Vec<Box<dyn DynSystem>> = vec![
            Box::new(SimpleSignatureScheme::with_params(sig).build(&ds, &params).unwrap()),
            Box::new(IntegratedSignatureScheme::new(group).with_params(sig).build(&ds, &params).unwrap()),
            Box::new(MultiLevelSignatureScheme::new(group).with_params(sig).build(&ds, &params).unwrap()),
        ];
        let present = ds.record(idx.index(ds.len())).key;
        for sys in &systems {
            let hit = sys.probe(present, t);
            prop_assert!(hit.found, "{} missed {present}", sys.scheme_name());
            prop_assert!(!hit.aborted);
            let out = sys.probe(Key(probe_key), t);
            prop_assert_eq!(out.found, ds.contains(Key(probe_key)), "{}", sys.scheme_name());
            prop_assert!(!out.aborted);
        }
    }

    /// Attribute queries on the simple scheme: found iff some record
    /// carries the value (as key or attribute).
    #[test]
    fn attribute_queries_are_exact(
        ds in arb_records(),
        sig in arb_sig(),
        t in 0u64..1 << 40,
        idx in any::<proptest::sample::Index>(),
        phantom in any::<u64>(),
    ) {
        let params = Params::paper();
        let sys = SimpleSignatureScheme::with_params(sig).build(&ds, &params).unwrap();
        let run = |value: u64| {
            bda_core::machine::run_machine(
                bda_core::System::channel(&sys),
                sys.attr_query(value),
                t,
            )
        };
        let rec = ds.record(idx.index(ds.len()));
        for &attr in rec.attrs.iter().chain([rec.key.value()].iter()) {
            let out = run(attr);
            prop_assert!(out.found, "attribute {attr} not found");
            prop_assert!(!out.aborted);
        }
        let present = ds
            .records()
            .iter()
            .any(|r| r.key.value() == phantom || r.attrs.contains(&phantom));
        let out = run(phantom);
        prop_assert_eq!(out.found, present);
        prop_assert!(!out.aborted);
    }
}
