//! The accuracy controller (paper §3, `AccuracyController`).
//!
//! "To ensure the accuracy of our simulation … users can specify the
//! accuracy expectation for the simulation. The simulation process will not
//! terminate unless the expected accuracy is achieved." The accuracy of a
//! metric is defined (footnote 1) as `H/Ȳ`, where `H` is the Student-t
//! confidence-interval half-width at the chosen confidence level.

use crate::stats::Welford;

/// Decides when the simulation may stop.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyController {
    /// Confidence level (Table 1: 0.99).
    pub confidence: f64,
    /// Required relative accuracy `H/Ȳ` (Table 1: 0.01).
    pub accuracy: f64,
    /// Never stop before this many samples, regardless of accuracy (guards
    /// against spuriously tight early estimates).
    pub min_samples: u64,
}

impl AccuracyController {
    /// Controller with the paper's Table-1 settings.
    pub fn paper() -> Self {
        AccuracyController {
            confidence: 0.99,
            accuracy: 0.01,
            min_samples: 2_000,
        }
    }

    /// A looser controller for fast tests and examples.
    pub fn quick() -> Self {
        AccuracyController {
            confidence: 0.95,
            accuracy: 0.05,
            min_samples: 200,
        }
    }

    /// Whether a single metric has reached the requested accuracy.
    pub fn metric_satisfied(&self, w: &Welford) -> bool {
        w.count() >= self.min_samples.max(2)
            && w.summary(self.confidence).accuracy() <= self.accuracy
    }

    /// Whether the simulation may stop: every tracked metric must have
    /// converged.
    pub fn satisfied(&self, metrics: &[&Welford]) -> bool {
        metrics.iter().all(|w| self.metric_satisfied(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_minimum_samples() {
        let ctl = AccuracyController {
            confidence: 0.95,
            accuracy: 0.5,
            min_samples: 100,
        };
        let mut w = Welford::new();
        for _ in 0..50 {
            w.push(10.0);
        }
        assert!(!ctl.metric_satisfied(&w), "below min_samples");
        for _ in 0..50 {
            w.push(10.0);
        }
        assert!(ctl.metric_satisfied(&w), "constant data is fully accurate");
    }

    #[test]
    fn noisy_data_needs_more_samples() {
        let ctl = AccuracyController {
            confidence: 0.99,
            accuracy: 0.01,
            min_samples: 10,
        };
        let mut w = Welford::new();
        // Alternating 0/200: huge relative spread.
        for i in 0..100 {
            w.push(if i % 2 == 0 { 0.0 } else { 200.0 });
        }
        assert!(!ctl.metric_satisfied(&w));
        for i in 0..1_000_000 {
            w.push(if i % 2 == 0 { 0.0 } else { 200.0 });
        }
        assert!(ctl.metric_satisfied(&w), "eventually converges");
    }

    #[test]
    fn all_metrics_must_converge() {
        let ctl = AccuracyController::quick();
        let mut tight = Welford::new();
        let mut loose = Welford::new();
        for i in 0..500 {
            tight.push(100.0);
            loose.push(if i % 2 == 0 { 1.0 } else { 1000.0 });
        }
        assert!(ctl.metric_satisfied(&tight));
        assert!(!ctl.metric_satisfied(&loose));
        assert!(!ctl.satisfied(&[&tight, &loose]));
        assert!(ctl.satisfied(&[&tight]));
    }

    #[test]
    fn paper_settings_match_table1() {
        let p = AccuracyController::paper();
        assert_eq!(p.confidence, 0.99);
        assert_eq!(p.accuracy, 0.01);
    }
}
