//! The discrete-event core: arrivals and client wake-ups in global time
//! order.
//!
//! Every broadcast of a bucket, every request arrival and every client
//! wake-up is an event; clients advance through their access protocol one
//! [`WalkStep`] at a time, so at any simulated instant the engine knows
//! exactly which clients are listening, dozing or done — the paper's
//! "broadcasting of each data item, generation of each user request and
//! processing of the request are all considered to be separate events …
//! handled independently" (§3).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bda_core::{AccessOutcome, DynSystem, Key, QueryRun, Ticks, WalkStep};

/// One completed request with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedRequest {
    /// Arrival (tune-in) time of the request.
    pub arrival: Ticks,
    /// The key that was queried.
    pub key: Key,
    /// Protocol outcome.
    pub outcome: AccessOutcome,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A request tunes in.
    Arrival(usize),
    /// A client finishes its current listen/doze and acts again.
    Wake(usize),
}

/// Run a batch of requests through the event engine and return their
/// outcomes (in arrival order).
///
/// `requests` are `(arrival time, key)` pairs; arrivals need not be sorted.
/// Concurrent clients interleave: the engine always advances the globally
/// earliest pending event, exactly like a real shared broadcast medium.
pub fn run_requests(
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
) -> Vec<CompletedRequest> {
    // (time, tiebreak sequence, event) — BinaryHeap is a max-heap, so wrap
    // in Reverse for earliest-first ordering. The sequence number keeps
    // simultaneous events deterministic (arrival before wake is irrelevant
    // for correctness; determinism is what matters for reproducibility).
    let mut queue: BinaryHeap<Reverse<(Ticks, u64, usize, u8)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, &(t, _)) in requests.iter().enumerate() {
        queue.push(Reverse((t, seq, i, 0)));
        seq += 1;
    }

    let mut runs: Vec<Option<Box<dyn QueryRun + '_>>> =
        (0..requests.len()).map(|_| None).collect();
    let mut done: Vec<Option<CompletedRequest>> = vec![None; requests.len()];

    while let Some(Reverse((_t, _s, idx, kind))) = queue.pop() {
        let event = if kind == 0 {
            Event::Arrival(idx)
        } else {
            Event::Wake(idx)
        };
        match event {
            Event::Arrival(i) => {
                let (arrival, key) = requests[i];
                runs[i] = Some(system.begin(key, arrival));
                // Immediately perform the first step; its completion time
                // becomes the next wake-up.
                step_client(i, &mut runs, &mut done, requests, &mut queue, &mut seq);
            }
            Event::Wake(i) => {
                step_client(i, &mut runs, &mut done, requests, &mut queue, &mut seq);
            }
        }
    }

    done.into_iter()
        .map(|d| d.expect("every request completes"))
        .collect()
}

fn step_client<'a>(
    i: usize,
    runs: &mut [Option<Box<dyn QueryRun + 'a>>],
    done: &mut [Option<CompletedRequest>],
    requests: &[(Ticks, Key)],
    queue: &mut BinaryHeap<Reverse<(Ticks, u64, usize, u8)>>,
    seq: &mut u64,
) {
    let run = runs[i].as_mut().expect("client exists while stepping");
    match run.step() {
        WalkStep::Read { until, .. } => {
            queue.push(Reverse((until, *seq, i, 1)));
            *seq += 1;
        }
        WalkStep::Doze { until } => {
            queue.push(Reverse((until, *seq, i, 1)));
            *seq += 1;
        }
        WalkStep::Done(outcome) => {
            let (arrival, key) = requests[i];
            done[i] = Some(CompletedRequest {
                arrival,
                key,
                outcome,
            });
            runs[i] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{Dataset, FlatScheme, Params, Record, Scheme};

    fn system() -> impl DynSystem {
        let ds = Dataset::new((0..32).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        FlatScheme.build(&ds, &Params::paper()).unwrap()
    }

    #[test]
    fn event_engine_matches_direct_probe() {
        let sys = system();
        let requests: Vec<(Ticks, Key)> = (0..200u64)
            .map(|i| (i * 137, Key((i % 32) * 2)))
            .collect();
        let results = run_requests(&sys, &requests);
        assert_eq!(results.len(), requests.len());
        for (r, &(t, k)) in results.iter().zip(&requests) {
            assert_eq!(r.arrival, t);
            assert_eq!(r.key, k);
            let direct = sys.probe(k, t);
            assert_eq!(r.outcome, direct, "event-driven ≡ direct for t={t}");
        }
    }

    #[test]
    fn unsorted_arrivals_are_handled() {
        let sys = system();
        let requests = vec![
            (5000u64, Key(0)),
            (0u64, Key(2)),
            (99999u64, Key(4)),
            (1u64, Key(6)),
        ];
        let results = run_requests(&sys, &requests);
        // Results come back in request order regardless of arrival order.
        for (r, &(t, k)) in results.iter().zip(&requests) {
            assert_eq!((r.arrival, r.key), (t, k));
            assert!(r.outcome.found);
        }
    }

    #[test]
    fn simultaneous_arrivals_complete_identically() {
        let sys = system();
        let requests = vec![(1234u64, Key(8)); 10];
        let results = run_requests(&sys, &requests);
        for w in results.windows(2) {
            assert_eq!(w[0].outcome, w[1].outcome);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let sys = system();
        assert!(run_requests(&sys, &[]).is_empty());
    }
}
