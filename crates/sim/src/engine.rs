//! The discrete-event core: arrivals and client wake-ups in global time
//! order.
//!
//! Every broadcast of a bucket, every request arrival and every client
//! wake-up is an event; clients advance through their access protocol one
//! [`WalkStep`] at a time, so at any simulated instant the engine knows
//! exactly which clients are listening, dozing or done — the paper's
//! "broadcasting of each data item, generation of each user request and
//! processing of the request are all considered to be separate events …
//! handled independently" (§3).
//!
//! # Architecture
//!
//! The engine scales to very large concurrent client populations through
//! three structural choices (see DESIGN.md, "Discrete-event engine"):
//!
//! * **Slab-backed client arena.** Clients live in reusable
//!   [`QuerySlot`]s held in a slab (`Vec` + free list). A slot is
//!   allocated once per *concurrent client*, then re-armed for each new
//!   request — at steady state the engine performs no per-request heap
//!   allocation, where the previous design boxed a fresh
//!   `Box<dyn QueryRun>` per request.
//! * **Bucket-aligned wakeup scheduler.** After its first step a client
//!   only ever wakes at a bucket boundary of the one shared broadcast
//!   cycle, so pending wake-ups collapse onto few distinct instants. The
//!   scheduler batches all clients waking at the same instant behind a
//!   single entry in an ordered map of *distinct times*: scheduler
//!   traffic is `O(distinct boundaries)` instead of `O(clients)`, and
//!   every batch is stepped together in one cache-friendly sweep.
//! * **Steady-state streaming.** [`Engine::run_stream`] admits requests
//!   from an iterator only while the in-flight population is below a
//!   bound, so simulating millions of requests needs memory proportional
//!   to the *concurrency*, not to the request count.
//!
//! The naive heap engine this replaces is preserved as
//! [`reference::run_requests_reference`] — the oracle the property suite
//! checks the slab engine against.

use std::collections::BTreeMap;

use bda_core::{
    AccessOutcome, ChannelModel, DynSystem, ErrorModel, Key, QuerySlot, RetryPolicy, Ticks,
    WalkStep,
};
use bda_obs::{Completion, Gauge, MetricsHub, WindowSpec};

/// One completed request with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedRequest {
    /// Arrival (tune-in) time of the request.
    pub arrival: Ticks,
    /// The key that was queried.
    pub key: Key,
    /// Protocol outcome.
    pub outcome: AccessOutcome,
}

/// Engine-level counters, for throughput tracking and the perf harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Walker steps processed (reads + dozes + completions).
    pub events: u64,
    /// Wake-up batches drained — each batch is one distinct simulated
    /// instant; `events / wake_batches` is the mean batching factor the
    /// bucket-aligned scheduler achieved.
    pub wake_batches: u64,
    /// Maximum number of clients simultaneously in flight (tuned in but
    /// not yet finished).
    pub peak_in_flight: usize,
    /// Requests completed.
    pub completed: u64,
    /// Corrupted bucket transmissions clients recovered from (or abandoned
    /// at) across all completed requests — always 0 on a lossless channel.
    pub corrupt_reads: u64,
    /// Requests whose [`RetryPolicy`] gave up (truthful
    /// [`AccessOutcome::abandoned`] outcomes; always 0 under
    /// [`RetryPolicy::UNBOUNDED`]).
    pub abandoned: u64,
    /// Stale-machine restarts across all completed requests: times a walk
    /// discarded its protocol machine and re-anchored on the live broadcast
    /// program after detecting version skew. Always 0 on a frozen channel.
    pub stale_restarts: u64,
    /// Version-skewed buckets observed across all completed requests
    /// (`>= stale_restarts`; always 0 on a frozen channel).
    pub version_skews: u64,
}

impl EngineStats {
    /// Fold another engine's counters into this one — how the sharded
    /// engine aggregates per-shard stats.
    ///
    /// All counters sum. For the per-request counters (see
    /// [`EngineStats::outcome_counters`]) the sum is exact and invariant
    /// under sharding. `wake_batches` sums to the total number of distinct
    /// wake instants drained *somewhere* (shards keep independent
    /// schedulers, so this exceeds the single-engine figure when
    /// simultaneous instants land on different shards), and
    /// `peak_in_flight` sums because shard populations coexist in
    /// simulated time — the merged value is the exact aggregate peak when
    /// every shard peaks at the same simulated instant and an upper bound
    /// otherwise.
    pub fn merge(&mut self, other: &EngineStats) {
        self.events += other.events;
        self.wake_batches += other.wake_batches;
        self.peak_in_flight += other.peak_in_flight;
        self.completed += other.completed;
        self.corrupt_reads += other.corrupt_reads;
        self.abandoned += other.abandoned;
        self.stale_restarts += other.stale_restarts;
        self.version_skews += other.version_skews;
    }

    /// The projection of these counters that is **invariant under
    /// sharding**: `[events, completed, corrupt_reads, abandoned,
    /// stale_restarts, version_skews]`.
    ///
    /// Each is a sum of per-request quantities, and on a broadcast channel
    /// every request's walk is independent of scheduling — so for any
    /// partition of a batch, the per-shard values sum to exactly the
    /// single-engine values. `wake_batches` and `peak_in_flight` describe
    /// scheduler *shape* (how clients happened to batch and overlap) and
    /// are deliberately excluded; the `engine_sharded_equiv` suite pins
    /// this projection bit-for-bit across shard counts.
    pub fn outcome_counters(&self) -> [u64; 6] {
        [
            self.events,
            self.completed,
            self.corrupt_reads,
            self.abandoned,
            self.stale_restarts,
            self.version_skews,
        ]
    }
}

/// Batching wake-up scheduler.
///
/// All post-arrival wake times are bucket boundaries of the shared cycle,
/// so at any moment the set of pending wake *times* is small (bounded by
/// the boundaries of roughly one cycle plus pending arrival instants)
/// even when the set of pending *clients* is huge. An ordered map over
/// the distinct instants holds every client waking at each one; drained
/// waiter vectors are pooled and reused, so steady-state scheduling does
/// no allocation.
#[derive(Debug, Default)]
struct WakeupScheduler {
    /// Clients waiting per distinct instant, in scheduling order.
    waiters: BTreeMap<Ticks, Vec<u32>>,
    /// Empty vectors recycled from drained batches.
    pool: Vec<Vec<u32>>,
}

impl WakeupScheduler {
    fn schedule(&mut self, t: Ticks, client: u32) {
        self.waiters
            .entry(t)
            .or_insert_with(|| self.pool.pop().unwrap_or_default())
            .push(client);
    }

    /// Remove and return the earliest batch `(instant, clients)`. The
    /// previous contents of `buf` are returned to the vector pool.
    fn pop_batch(&mut self, buf: &mut Vec<u32>) -> Option<Ticks> {
        let (t, clients) = self.waiters.pop_first()?;
        let mut old = std::mem::replace(buf, clients);
        old.clear();
        self.pool.push(old);
        Some(t)
    }

    fn is_empty(&self) -> bool {
        self.waiters.is_empty()
    }

    /// Distinct pending wake-up instants — the queue-depth gauge.
    fn depth(&self) -> usize {
        self.waiters.len()
    }
}

/// Per-client request bookkeeping, parallel to the slot slab.
#[derive(Debug, Clone, Copy)]
struct ClientMeta {
    arrival: Ticks,
    key: Key,
    /// Caller-supplied tag (request index in batch mode, admission
    /// sequence in streaming mode).
    tag: u64,
    /// Whether the arrival event has fired (the client counts as
    /// in-flight from then until completion).
    started: bool,
}

/// The slab + scheduler discrete-event engine.
///
/// An `Engine` is bound to one system and reusable across any number of
/// batches or streams; slot allocations persist, so repeated rounds (the
/// simulator's normal operation) run allocation-free after warm-up.
pub struct Engine<'a> {
    system: &'a dyn DynSystem,
    /// Slab of reusable client slots: created lazily on first use, then
    /// recycled via the free list forever after.
    slots: Vec<Box<dyn QuerySlot + 'a>>,
    meta: Vec<ClientMeta>,
    free: Vec<u32>,
    in_flight: usize,
    sched: WakeupScheduler,
    /// Scratch buffer for draining batches without reallocating.
    batch: Vec<u32>,
    stats: EngineStats,
    /// Per-transmission channel corruption every admitted client sees
    /// ([`ChannelModel::NONE`] for a perfect channel; i.i.d., burst, or
    /// outage-scarred).
    channel: ChannelModel,
    /// Client-side recovery policy for corrupt reads.
    policy: RetryPolicy,
    /// Observability hub, when enabled: slots record per-walk phase spans,
    /// completions feed the histograms, and every wake-up batch samples
    /// the occupancy gauges. `None` (the default) costs one untaken branch
    /// per completion and per batch — nothing on the per-step hot path.
    obs: Option<Box<MetricsHub>>,
    /// Start of the current busy period (`in_flight > 0`), tracked at the
    /// 0→1 transition so windowed metrics can attribute busy vs idle ticks
    /// per shard. Plain tick bookkeeping — no wall clock.
    busy_since: Option<Ticks>,
    /// Whether admitted clients use analytical fast-forward (on by
    /// default): scan-heavy schemes collapse runs of mechanical bucket
    /// transitions into one wake-up with bit-identical outcomes and
    /// accounting. Turn off via [`Engine::set_fast_forward`] to force
    /// bucket-by-bucket stepping (the differential baseline).
    fast_forward: bool,
}

impl<'a> Engine<'a> {
    /// A fresh engine for `system` with an empty arena, over a lossless
    /// channel.
    pub fn new(system: &'a dyn DynSystem) -> Self {
        Engine::with_faults(system, ErrorModel::NONE, RetryPolicy::UNBOUNDED)
    }

    /// A fresh engine whose clients all experience the error-prone channel
    /// `errors` and recover per `policy` — the fault-injection testbed.
    ///
    /// Corruption is a pure function of each bucket occurrence's absolute
    /// broadcast instant and the model seed, so the slab engine, the
    /// reference heap engine and the direct walker see *identical*
    /// corruption for the same request — the property the
    /// `engine_lossy_equiv` differential suite pins.
    pub fn with_faults(system: &'a dyn DynSystem, errors: ErrorModel, policy: RetryPolicy) -> Self {
        Engine::with_channel(system, errors.into(), policy)
    }

    /// A fresh engine whose clients all experience the unified
    /// [`ChannelModel`] `channel` (i.i.d. or burst loss, with or without
    /// outage windows) and recover per `policy`. With a degenerate channel
    /// (`ChannelModel::from(errors)`) this is bit-identical to
    /// [`Engine::with_faults`].
    pub fn with_channel(
        system: &'a dyn DynSystem,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Self {
        Engine {
            system,
            slots: Vec::new(),
            meta: Vec::new(),
            free: Vec::new(),
            in_flight: 0,
            sched: WakeupScheduler::default(),
            batch: Vec::new(),
            stats: EngineStats::default(),
            channel,
            policy,
            obs: None,
            busy_since: None,
            fast_forward: true,
        }
    }

    /// Enable or disable analytical fast-forward for clients admitted from
    /// now on (it is **on** by default). Fast-forward never changes an
    /// outcome, a tick of accounting, or a recorded span — only the number
    /// of engine events a walk costs — so the only reason to disable it is
    /// to measure the bucket-by-bucket baseline or to drive differential
    /// tests.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Turn on metrics collection. Must be called while the arena is idle
    /// (typically right after construction): existing slots are discarded
    /// so every future slot is span-instrumented.
    ///
    /// # Panics
    ///
    /// Panics if clients are currently admitted.
    pub fn enable_metrics(&mut self) {
        assert_eq!(self.occupied(), 0, "enable_metrics requires an idle engine");
        self.slots.clear();
        self.meta.clear();
        self.free.clear();
        self.obs = Some(Box::default());
    }

    /// [`Engine::enable_metrics`] plus time-resolved collection: the hub
    /// carries a windowed [`bda_obs::TimeSeries`] (window width in ticks
    /// per `spec`), so completions, wake batches, in-flight high-water and
    /// busy periods resolve per window as well as in aggregate. Costs the
    /// same one untaken branch as plain metrics when disabled; the window
    /// sums equal the aggregates exactly (pinned by `timeline_equiv`).
    ///
    /// # Panics
    ///
    /// Panics if clients are currently admitted.
    pub fn enable_metrics_windowed(&mut self, spec: WindowSpec) {
        self.enable_metrics();
        self.obs
            .as_deref_mut()
            .expect("metrics just enabled")
            .enable_windows(spec);
    }

    /// The metrics hub, when [`Engine::enable_metrics`] was called.
    pub fn metrics(&self) -> Option<&MetricsHub> {
        self.obs.as_deref()
    }

    /// Detach and return the metrics hub, disabling further collection.
    pub fn take_metrics(&mut self) -> Option<MetricsHub> {
        self.obs.take().map(|b| *b)
    }

    /// Counters accumulated over everything this engine has run.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Clients currently tuned in (arrived but not finished).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Client slots ever allocated (the arena's high-water mark). Stays at
    /// `max_in_flight` in streaming mode even when requests abandon: a
    /// completed slot — found, not-found or abandoned — returns to the
    /// free list.
    pub fn arena_len(&self) -> usize {
        self.slots.len()
    }

    /// Number of client slots currently admitted (in flight or awaiting
    /// their arrival instant).
    pub(crate) fn occupied(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Admit a request: claim a slot (reusing a free one if possible) and
    /// schedule its arrival event.
    pub(crate) fn admit(&mut self, arrival: Ticks, key: Key, tag: u64) {
        let id = match self.free.pop() {
            Some(id) => {
                self.meta[id as usize] = ClientMeta {
                    arrival,
                    key,
                    tag,
                    started: false,
                };
                id
            }
            None => {
                let id = u32::try_from(self.slots.len()).expect("client population fits in u32");
                self.slots.push(if self.obs.is_some() {
                    self.system
                        .make_slot_channel_observed(self.channel, self.policy)
                } else {
                    self.system.make_slot_channel(self.channel, self.policy)
                });
                self.meta.push(ClientMeta {
                    arrival,
                    key,
                    tag,
                    started: false,
                });
                id
            }
        };
        self.slots[id as usize].set_fast_forward(self.fast_forward);
        self.sched.schedule(arrival, id);
    }

    /// Step client `id` once at batch instant `now`; on completion,
    /// report `(tag, result)` and recycle the slot.
    fn step_client(
        &mut self,
        now: Ticks,
        id: u32,
        on_complete: &mut impl FnMut(u64, CompletedRequest),
    ) {
        let m = self.meta[id as usize];
        if !m.started {
            self.meta[id as usize].started = true;
            self.in_flight += 1;
            if self.in_flight == 1 {
                // Idle → busy transition; the arrival event fires at the
                // request's arrival instant.
                self.busy_since = Some(m.arrival);
            }
            self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight);
            self.slots[id as usize].start(m.key, m.arrival);
        }
        self.stats.events += 1;
        match self.slots[id as usize].step() {
            WalkStep::Read { until, .. } | WalkStep::Doze { until } => {
                self.sched.schedule(until, id);
            }
            WalkStep::Done(outcome) => {
                self.in_flight -= 1;
                self.stats.completed += 1;
                self.stats.corrupt_reads += u64::from(outcome.retries);
                self.stats.abandoned += u64::from(outcome.abandoned);
                self.stats.stale_restarts += u64::from(outcome.stale_restarts);
                self.stats.version_skews += u64::from(outcome.version_skews);
                // The walk ends at its arrival plus its access time — a
                // pure function of the outcome, so window attribution is
                // invariant under sharding and fast-forward. (For
                // abandoned walks this can run one bucket past the batch
                // instant delivering the Done: the final corrupted read
                // is charged to access but never walked.)
                let end_tick = m.arrival + outcome.access;
                let busy_start = if self.in_flight == 0 {
                    self.busy_since.take()
                } else {
                    None
                };
                if let Some(hub) = self.obs.as_deref_mut() {
                    hub.complete_at(
                        &Completion {
                            end_tick,
                            access: outcome.access,
                            tuning: outcome.tuning,
                            retries: outcome.retries,
                            stale_restarts: outcome.stale_restarts,
                            version_skews: outcome.version_skews,
                            found: outcome.found,
                            abandoned: outcome.abandoned,
                        },
                        self.slots[id as usize].spans(),
                    );
                    // Busy periods end at the batch instant, not at
                    // `end_tick`: the engine is idle once the batch is
                    // drained, and using the (possibly later) abandoned
                    // end_tick would overlap the next busy period.
                    if let (Some(start), Some(ts)) = (busy_start, hub.windows.as_mut()) {
                        ts.record_busy_span(start, now);
                    }
                }
                self.free.push(id);
                on_complete(
                    m.tag,
                    CompletedRequest {
                        arrival: m.arrival,
                        key: m.key,
                        outcome,
                    },
                );
            }
        }
    }

    /// Drain the earliest wake-up batch, stepping every client scheduled
    /// for that instant. Returns `false` when nothing is pending.
    pub(crate) fn advance(&mut self, on_complete: &mut impl FnMut(u64, CompletedRequest)) -> bool {
        let mut batch = std::mem::take(&mut self.batch);
        let instant = self.sched.pop_batch(&mut batch);
        let advanced = instant.is_some();
        if let Some(t) = instant {
            self.stats.wake_batches += 1;
            for &id in &batch {
                self.step_client(t, id, on_complete);
            }
            if let Some(hub) = self.obs.as_deref_mut() {
                // Wake-up boundaries are the engine's natural sampling
                // grid: one sample per distinct simulated instant.
                hub.gauges.record(Gauge::InFlight, self.in_flight as u64);
                hub.gauges.record(
                    Gauge::SlabOccupancy,
                    (self.slots.len() - self.free.len()) as u64,
                );
                hub.gauges
                    .record(Gauge::WakeupQueueDepth, self.sched.depth() as u64);
                hub.gauges
                    .record(Gauge::FreeListLen, self.free.len() as u64);
                if let Some(ts) = hub.windows.as_mut() {
                    ts.record_batch(t, self.in_flight as u64);
                }
            }
        }
        self.batch = batch;
        advanced
    }

    /// Run a whole batch of `(arrival, key)` requests to completion,
    /// returning outcomes **in request order**. Arrivals need not be
    /// sorted; simultaneous arrivals are fine.
    pub fn run_batch(&mut self, requests: &[(Ticks, Key)]) -> Vec<CompletedRequest> {
        for (i, &(t, key)) in requests.iter().enumerate() {
            self.admit(t, key, i as u64);
        }
        let mut done: Vec<Option<CompletedRequest>> = vec![None; requests.len()];
        while self.advance(&mut |tag, r| done[tag as usize] = Some(r)) {}
        done.into_iter()
            .map(|d| d.expect("engine invariant: every admitted request completes"))
            .collect()
    }

    /// Steady-state mode: stream requests through a bounded in-flight
    /// population.
    ///
    /// Requests are admitted from `requests` (in order) whenever fewer
    /// than `max_in_flight` clients are admitted, so memory is
    /// `O(max_in_flight)` regardless of how long the stream is.
    /// Completions are reported to `on_complete` in completion order.
    /// Because clients on a broadcast channel are independent, each
    /// request's outcome is identical to batch mode; only the reporting
    /// order differs.
    ///
    /// `max_in_flight == 0` means **unbounded**: every request is admitted
    /// immediately (memory grows with the whole stream, exactly like
    /// [`Engine::run_batch`]). It is *not* a zero-capacity stall — the
    /// previous behaviour silently clamped 0 to 1, which this replaces
    /// with a documented, tested semantics.
    pub fn run_stream<I>(
        &mut self,
        requests: I,
        max_in_flight: usize,
        mut on_complete: impl FnMut(CompletedRequest),
    ) where
        I: IntoIterator<Item = (Ticks, Key)>,
    {
        let cap = if max_in_flight == 0 {
            usize::MAX
        } else {
            max_in_flight
        };
        let mut pending = requests.into_iter();
        let mut exhausted = false;
        loop {
            while !exhausted && self.occupied() < cap {
                match pending.next() {
                    Some((t, key)) => self.admit(t, key, 0),
                    None => exhausted = true,
                }
            }
            if !self.advance(&mut |_tag, r| on_complete(r)) {
                debug_assert!(self.sched.is_empty());
                if exhausted {
                    break;
                }
            }
        }
    }
}

/// Run a batch of requests through the event engine and return their
/// outcomes (in arrival order).
///
/// `requests` are `(arrival time, key)` pairs; arrivals need not be sorted.
/// Concurrent clients interleave: the engine always advances the globally
/// earliest pending event, exactly like a real shared broadcast medium.
pub fn run_requests(system: &dyn DynSystem, requests: &[(Ticks, Key)]) -> Vec<CompletedRequest> {
    Engine::new(system).run_batch(requests)
}

/// [`run_requests`] over an error-prone channel with a client retry
/// policy.
pub fn run_requests_with_faults(
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    errors: ErrorModel,
    policy: RetryPolicy,
) -> Vec<CompletedRequest> {
    Engine::with_faults(system, errors, policy).run_batch(requests)
}

/// [`run_requests`] over a unified [`ChannelModel`] (burst loss, outage
/// windows, or both) with a client retry policy.
pub fn run_requests_channel(
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    channel: ChannelModel,
    policy: RetryPolicy,
) -> Vec<CompletedRequest> {
    Engine::with_channel(system, channel, policy).run_batch(requests)
}

/// [`run_requests_channel`] with the observability layer switched on.
pub fn run_requests_channel_observed(
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    channel: ChannelModel,
    policy: RetryPolicy,
) -> (Vec<CompletedRequest>, MetricsHub) {
    let mut engine = Engine::with_channel(system, channel, policy);
    engine.enable_metrics();
    let completed = engine.run_batch(requests);
    let hub = engine.take_metrics().expect("metrics were enabled");
    (completed, hub)
}

/// [`run_requests_channel_observed`] with time-resolved collection: the
/// returned hub carries a windowed time series (windows of `width` ticks)
/// whose sums equal the aggregates exactly.
pub fn run_requests_channel_windowed(
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    channel: ChannelModel,
    policy: RetryPolicy,
    width: u64,
) -> (Vec<CompletedRequest>, MetricsHub) {
    let mut engine = Engine::with_channel(system, channel, policy);
    engine.enable_metrics_windowed(WindowSpec::new(width));
    let completed = engine.run_batch(requests);
    let hub = engine.take_metrics().expect("metrics were enabled");
    (completed, hub)
}

/// [`run_requests_with_faults`] with the observability layer switched on:
/// returns the completed requests together with the run's [`MetricsHub`]
/// (per-phase spans, access/tuning/retry histograms, engine gauges).
pub fn run_requests_observed(
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    errors: ErrorModel,
    policy: RetryPolicy,
) -> (Vec<CompletedRequest>, MetricsHub) {
    let mut engine = Engine::with_faults(system, errors, policy);
    engine.enable_metrics();
    let completed = engine.run_batch(requests);
    let hub = engine.take_metrics().expect("metrics were enabled");
    (completed, hub)
}

pub mod reference {
    //! The naive per-request engine the slab design replaced: one
    //! `Box<dyn QueryRun>` per request, every wake-up an individual entry
    //! in a tuple-keyed `BinaryHeap`. Kept as the behavioural oracle for
    //! the equivalence property suite (`engine_equiv`), and as the
    //! baseline the `engine_bench` harness measures speedups against.

    use super::*;
    use bda_core::QueryRun;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Reference implementation of [`super::run_requests`]: identical
    /// outcomes, naive scheduling.
    pub fn run_requests_reference(
        system: &dyn DynSystem,
        requests: &[(Ticks, Key)],
    ) -> Vec<CompletedRequest> {
        run_requests_reference_with_faults(
            system,
            requests,
            ErrorModel::NONE,
            RetryPolicy::UNBOUNDED,
        )
    }

    /// Reference implementation of [`super::run_requests_with_faults`]:
    /// the oracle side of the lossy differential suite.
    pub fn run_requests_reference_with_faults(
        system: &dyn DynSystem,
        requests: &[(Ticks, Key)],
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Vec<CompletedRequest> {
        run_requests_reference_channel(system, requests, errors.into(), policy)
    }

    /// Reference implementation of [`super::run_requests_channel`]: the
    /// oracle side of the burst/outage differential suite.
    pub fn run_requests_reference_channel(
        system: &dyn DynSystem,
        requests: &[(Ticks, Key)],
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Vec<CompletedRequest> {
        // (time, tiebreak sequence, request index, kind) with kind 0 =
        // arrival, 1 = wake; Reverse for earliest-first order.
        let mut queue: BinaryHeap<Reverse<(Ticks, u64, usize, u8)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, &(t, _)) in requests.iter().enumerate() {
            queue.push(Reverse((t, seq, i, 0)));
            seq += 1;
        }

        let mut runs: Vec<Option<Box<dyn QueryRun + '_>>> =
            (0..requests.len()).map(|_| None).collect();
        let mut done: Vec<Option<CompletedRequest>> = vec![None; requests.len()];

        while let Some(Reverse((_t, _s, i, kind))) = queue.pop() {
            if kind == 0 {
                let (arrival, key) = requests[i];
                runs[i] = Some(system.begin_with_channel(key, arrival, channel, policy));
            }
            let run = runs[i].as_mut().expect("client exists while stepping");
            match run.step() {
                WalkStep::Read { until, .. } | WalkStep::Doze { until } => {
                    queue.push(Reverse((until, seq, i, 1)));
                    seq += 1;
                }
                WalkStep::Done(outcome) => {
                    let (arrival, key) = requests[i];
                    done[i] = Some(CompletedRequest {
                        arrival,
                        key,
                        outcome,
                    });
                    runs[i] = None;
                }
            }
        }

        done.into_iter()
            .map(|d| d.expect("every request completes"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{Dataset, FlatScheme, Params, Record, Scheme};

    fn system() -> impl DynSystem {
        let ds = Dataset::new((0..32).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        FlatScheme.build(&ds, &Params::paper()).unwrap()
    }

    #[test]
    fn event_engine_matches_direct_probe() {
        let sys = system();
        let requests: Vec<(Ticks, Key)> =
            (0..200u64).map(|i| (i * 137, Key((i % 32) * 2))).collect();
        let results = run_requests(&sys, &requests);
        assert_eq!(results.len(), requests.len());
        for (r, &(t, k)) in results.iter().zip(&requests) {
            assert_eq!(r.arrival, t);
            assert_eq!(r.key, k);
            let direct = sys.probe(k, t);
            assert_eq!(r.outcome, direct, "event-driven ≡ direct for t={t}");
        }
    }

    #[test]
    fn unsorted_arrivals_are_handled() {
        let sys = system();
        let requests = vec![
            (5000u64, Key(0)),
            (0u64, Key(2)),
            (99999u64, Key(4)),
            (1u64, Key(6)),
        ];
        let results = run_requests(&sys, &requests);
        // Results come back in request order regardless of arrival order.
        for (r, &(t, k)) in results.iter().zip(&requests) {
            assert_eq!((r.arrival, r.key), (t, k));
            assert!(r.outcome.found);
        }
    }

    #[test]
    fn simultaneous_arrivals_complete_identically() {
        let sys = system();
        let requests = vec![(1234u64, Key(8)); 10];
        let results = run_requests(&sys, &requests);
        for w in results.windows(2) {
            assert_eq!(w[0].outcome, w[1].outcome);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let sys = system();
        assert!(run_requests(&sys, &[]).is_empty());
    }

    #[test]
    fn slab_engine_matches_reference_engine() {
        let sys = system();
        let requests: Vec<(Ticks, Key)> = (0..500u64)
            .map(|i| ((i * 7919) % 100_000, Key((i % 40) * 2)))
            .collect();
        let slab = run_requests(&sys, &requests);
        let naive = reference::run_requests_reference(&sys, &requests);
        assert_eq!(slab, naive);
    }

    #[test]
    fn slots_are_recycled_across_batches() {
        let sys = system();
        let mut engine = Engine::new(&sys);
        let requests: Vec<(Ticks, Key)> =
            (0..100u64).map(|i| (i * 31, Key((i % 32) * 2))).collect();
        engine.run_batch(&requests);
        let slots_after_first = engine.slots.len();
        engine.run_batch(&requests);
        assert_eq!(
            engine.slots.len(),
            slots_after_first,
            "second identical batch must not grow the arena"
        );
        assert_eq!(engine.stats().completed, 200);
    }

    #[test]
    fn streaming_bounds_the_population() {
        let sys = system();
        let mut engine = Engine::new(&sys);
        let requests: Vec<(Ticks, Key)> = (0..1000u64).map(|i| (i, Key((i % 32) * 2))).collect();
        let mut results = Vec::new();
        engine.run_stream(requests.iter().copied(), 16, |r| results.push(r));
        assert_eq!(results.len(), requests.len());
        assert!(engine.slots.len() <= 16, "arena capped at max_in_flight");
        assert!(engine.stats().peak_in_flight <= 16);
        // Outcomes equal batch mode's, request by request.
        let batch = run_requests(&sys, &requests);
        results.sort_by_key(|r| r.arrival);
        for (s, b) in results.iter().zip(&batch) {
            assert_eq!(s, b);
        }
    }

    #[test]
    fn stream_cap_edge_cases_recycle_and_match_batch() {
        let sys = system();
        let requests: Vec<(Ticks, Key)> =
            (0..200u64).map(|i| (i * 17, Key((i % 32) * 2))).collect();
        let batch = run_requests(&sys, &requests);
        // cap = 1 (fully serialized), cap = population (never blocks),
        // cap > population (slack never used).
        for cap in [1, requests.len(), requests.len() * 2] {
            let mut engine = Engine::new(&sys);
            let mut results = Vec::new();
            engine.run_stream(requests.iter().copied(), cap, |r| results.push(r));
            assert_eq!(results.len(), requests.len(), "cap={cap}");
            assert!(engine.slots.len() <= cap, "cap={cap}: arena exceeded cap");
            assert!(
                engine.stats().peak_in_flight <= cap,
                "cap={cap}: population exceeded cap"
            );
            results.sort_by_key(|r| r.arrival);
            assert_eq!(results, batch, "cap={cap}: outcomes drifted from batch");
            // Recycling: a second identical stream must not grow the arena.
            let arena = engine.slots.len();
            let mut again = Vec::new();
            engine.run_stream(requests.iter().copied(), cap, |r| again.push(r));
            assert_eq!(engine.slots.len(), arena, "cap={cap}: arena grew on reuse");
            again.sort_by_key(|r| r.arrival);
            assert_eq!(again, batch, "cap={cap}: reused engine drifted");
        }
    }

    #[test]
    fn zero_stream_cap_means_unbounded_not_a_stall() {
        let sys = system();
        let requests: Vec<(Ticks, Key)> =
            (0..150u64).map(|i| (i * 31, Key((i % 32) * 2))).collect();
        let mut engine = Engine::new(&sys);
        let mut results = Vec::new();
        // Regression: 0 used to be silently clamped to 1; a literal
        // zero-capacity reading would never admit anything and hang.
        engine.run_stream(requests.iter().copied(), 0, |r| results.push(r));
        assert_eq!(results.len(), requests.len());
        // Unbounded admission behaves exactly like batch mode, peak
        // population included.
        let mut batch_engine = Engine::new(&sys);
        let batch = batch_engine.run_batch(&requests);
        results.sort_by_key(|r| r.arrival);
        assert_eq!(results, batch);
        assert_eq!(
            engine.stats().peak_in_flight,
            batch_engine.stats().peak_in_flight
        );
    }

    #[test]
    fn faulty_engine_matches_direct_walker_and_counts_degradation() {
        let sys = system();
        let errors = ErrorModel::new(0.15, 0xFA11);
        let policy = RetryPolicy::bounded(2);
        let requests: Vec<(Ticks, Key)> =
            (0..300u64).map(|i| (i * 613, Key((i % 32) * 2))).collect();
        let mut engine = Engine::with_faults(&sys, errors, policy);
        let results = engine.run_batch(&requests);
        let mut retries = 0u64;
        let mut abandoned = 0u64;
        for (r, &(t, k)) in results.iter().zip(&requests) {
            let direct = sys.probe_with_policy(k, t, errors, policy);
            assert_eq!(r.outcome, direct, "slab ≡ walker under loss at t={t}");
            retries += u64::from(r.outcome.retries);
            abandoned += u64::from(r.outcome.abandoned);
            // Truthfulness: a key that is broadcast is found unless the
            // policy abandoned; it is never silently missed.
            assert!(r.outcome.found || r.outcome.abandoned);
            assert!(!r.outcome.aborted);
        }
        let stats = engine.stats();
        assert!(retries > 0, "15% loss must corrupt something");
        assert_eq!(stats.corrupt_reads, retries);
        assert_eq!(stats.abandoned, abandoned);
    }

    #[test]
    fn lossless_faulty_constructor_is_identity() {
        let sys = system();
        let requests: Vec<(Ticks, Key)> =
            (0..100u64).map(|i| (i * 137, Key((i % 32) * 2))).collect();
        let plain = run_requests(&sys, &requests);
        let faulty =
            run_requests_with_faults(&sys, &requests, ErrorModel::NONE, RetryPolicy::default());
        assert_eq!(plain, faulty);
        let strict = run_requests_with_faults(
            &sys,
            &requests,
            ErrorModel::NONE,
            RetryPolicy::bounded(0).with_deadline(1),
        );
        assert_eq!(plain, strict, "policies are no-ops without corruption");
    }

    #[test]
    fn observed_engine_matches_plain_and_accounts_every_tick() {
        use bda_obs::Gauge;
        let sys = system();
        let errors = ErrorModel::new(0.10, 0x0B5);
        let policy = RetryPolicy::bounded(3);
        let requests: Vec<(Ticks, Key)> =
            (0..300u64).map(|i| (i * 401, Key((i % 32) * 2))).collect();
        let plain = run_requests_with_faults(&sys, &requests, errors, policy);
        let (observed, hub) = run_requests_observed(&sys, &requests, errors, policy);
        assert_eq!(plain, observed, "observation must not perturb outcomes");

        assert_eq!(hub.completed, requests.len() as u64);
        let (access, tuning, found, abandoned) =
            plain.iter().fold((0u64, 0u64, 0u64, 0u64), |acc, r| {
                (
                    acc.0 + r.outcome.access,
                    acc.1 + r.outcome.tuning,
                    acc.2 + u64::from(r.outcome.found),
                    acc.3 + u64::from(r.outcome.abandoned),
                )
            });
        assert_eq!(hub.found, found);
        assert_eq!(hub.abandoned, abandoned);
        // Exact span accounting: per-phase ticks telescope to the metrics.
        assert_eq!(hub.spans.total_access(), access);
        assert_eq!(hub.spans.total_tuning(), tuning);
        assert_eq!(hub.access.sum(), u128::from(access));
        assert_eq!(hub.tuning.sum(), u128::from(tuning));
        assert_eq!(hub.access.len(), requests.len() as u64);
        // Gauges sampled once per wake batch, never exceeding the arena.
        let occ = hub.gauges.get(Gauge::SlabOccupancy);
        assert!(occ.samples > 0);
        assert_eq!(occ.last, 0, "final batch drains the slab");
        assert!(hub.gauges.get(Gauge::InFlight).max <= requests.len() as u64);
    }

    #[test]
    fn enable_metrics_rejects_a_busy_engine_and_resets_the_arena() {
        let sys = system();
        let mut engine = Engine::new(&sys);
        let requests: Vec<(Ticks, Key)> = (0..40u64).map(|i| (i * 97, Key((i % 32) * 2))).collect();
        engine.run_batch(&requests);
        assert!(engine.metrics().is_none());
        // Idle after the batch: enabling swaps every pooled slot for an
        // observed one, so spans are recorded from the next batch on.
        engine.enable_metrics();
        engine.run_batch(&requests);
        let hub = engine.take_metrics().unwrap();
        assert_eq!(hub.completed, 40);
        assert!(!hub.spans.is_empty(), "observed slots must record spans");
        assert!(engine.metrics().is_none(), "take_metrics clears the hub");
    }

    #[test]
    fn batches_step_same_instant_clients_together() {
        let sys = system();
        let mut engine = Engine::new(&sys);
        // 50 clients arriving at the same instant collapse onto shared
        // wake-up batches: far fewer batches than events.
        let requests = vec![(777u64, Key(8)); 50];
        engine.run_batch(&requests);
        let stats = engine.stats();
        assert_eq!(stats.completed, 50);
        assert!(
            stats.wake_batches < stats.events / 10,
            "expected heavy batching, got {} batches for {} events",
            stats.wake_batches,
            stats.events
        );
    }
}
