//! Re-export of the workspace's single histogram implementation.
//!
//! The log-bucketed percentile histogram used to live here; it moved to
//! `bda-obs` (which sits below `bda-core`) so every execution layer —
//! walkers, the slab engine, the bench harness — can share one
//! implementation with associative merging and exact sum/mean tracking.
//! This module remains so `bda_sim::histogram::Histogram` paths keep
//! working; the tests moved with the implementation.

pub use bda_obs::Histogram;
