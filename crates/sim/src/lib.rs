//! # bda-sim — the adaptive testbed (paper §3)
//!
//! A discrete-event simulation engine mirroring the paper's testbed
//! architecture (Fig. 3):
//!
//! * [`server::BroadcastServer`] — wraps a built broadcast system
//!   ([`bda_core::DynSystem`]) and exposes channel timing plus broadcast
//!   statistics;
//! * [`reqgen::RequestGenerator`] — generates requests "periodically based
//!   on certain distribution … the request generation process follows
//!   exponential distribution", drawing keys from a
//!   [`bda_datagen::QueryWorkload`];
//! * [`engine`] — the event queue: request arrivals and per-client wake-ups
//!   interleave in global time order, each client advancing through its
//!   access protocol one bucket read / doze at a time;
//! * [`results::ResultHandler`] — accumulates access-time and tuning-time
//!   statistics;
//! * [`accuracy::AccuracyController`] — terminates the simulation only once
//!   the requested confidence level and accuracy are achieved (Table 1:
//!   confidence 0.99, accuracy 0.01), using a Student-t confidence
//!   interval exactly as defined in the paper's footnote 1;
//! * [`simulator::Simulator`] — the coordinator tying all of the above
//!   together (init → start → simulate rounds → end).
//!
//! The engine drives the *same* protocol machines as the fast direct
//! walker (`bda_core::machine::run_machine`), so event-driven and one-shot
//! execution provably agree — the integration suite asserts it.

pub mod accuracy;
pub mod engine;
pub mod reqgen;
pub mod results;
pub mod server;
pub mod sharded;
pub mod simulator;
pub mod stats;
pub mod timeline;
pub mod updates;

pub use accuracy::AccuracyController;
pub use engine::{
    run_requests, run_requests_channel, run_requests_channel_observed,
    run_requests_channel_windowed, run_requests_observed, run_requests_with_faults,
    CompletedRequest, Engine, EngineStats,
};
pub use reqgen::RequestGenerator;
pub use results::ResultHandler;
pub use server::{BroadcastServer, StripedVersionedServer, VersionedServer};
pub use sharded::{
    run_requests_partitioned, run_requests_sharded, run_requests_sharded_channel,
    run_requests_sharded_observed, run_requests_sharded_with_faults, ShardRun, ShardedEngine,
};
pub use simulator::{SimConfig, SimReport, Simulator};
pub use stats::{student_t_quantile, Summary, Welford};
pub use timeline::{append_scheme_timeline, perfetto_trace, replay_spans, SpanSegment};
pub use updates::{UpdateOp, UpdateSpec, UpdateStream};
