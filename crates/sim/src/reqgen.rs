//! The request generator (paper §3, `RequestGenerator`).

use bda_core::{Key, Ticks};
use bda_datagen::{Arrivals, QueryWorkload};

/// Generates timed requests: exponential inter-arrival times (Table 1)
/// paired with keys drawn from a [`QueryWorkload`] (popularity and data
/// availability).
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    arrivals: Arrivals,
    workload: QueryWorkload,
}

impl RequestGenerator {
    /// Combine an arrival process with a key workload.
    pub fn new(arrivals: Arrivals, workload: QueryWorkload) -> Self {
        RequestGenerator { arrivals, workload }
    }

    /// Next request as an `(arrival time, key)` pair.
    pub fn next_request(&mut self) -> (Ticks, Key) {
        (self.arrivals.next_arrival(), self.workload.next_key())
    }

    /// Generate one round of `n` requests (paper: 500 per round).
    pub fn round(&mut self, n: usize) -> Vec<(Ticks, Key)> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::Dataset;
    use bda_datagen::DatasetBuilder;

    fn fixtures() -> Dataset {
        DatasetBuilder::new(100, 5).build().unwrap()
    }

    #[test]
    fn rounds_have_monotone_arrivals_and_valid_keys() {
        let ds = fixtures();
        let mut generator =
            RequestGenerator::new(Arrivals::new(800.0, 1), QueryWorkload::uniform(&ds, 2));
        let round = generator.round(500);
        assert_eq!(round.len(), 500);
        for w in round.windows(2) {
            assert!(w[0].0 <= w[1].0, "arrivals are monotone");
        }
        for (_, k) in &round {
            assert!(ds.contains(*k));
        }
    }

    #[test]
    fn successive_rounds_continue_the_clock() {
        let ds = fixtures();
        let mut generator =
            RequestGenerator::new(Arrivals::new(100.0, 3), QueryWorkload::uniform(&ds, 4));
        let r1 = generator.round(100);
        let r2 = generator.round(100);
        assert!(r1.last().unwrap().0 <= r2.first().unwrap().0);
    }
}
