//! The result handler (paper §3, `ResultHandler`).

use crate::engine::CompletedRequest;
use crate::stats::Welford;
use bda_obs::Histogram;

/// Accumulates per-request outcomes into the two evaluation metrics —
/// access time and tuning time — plus bookkeeping counters.
#[derive(Debug, Clone, Default)]
pub struct ResultHandler {
    access: Welford,
    tuning: Welford,
    access_hist: Histogram,
    tuning_hist: Histogram,
    retry_hist: Histogram,
    found: u64,
    not_found: u64,
    false_drops: u64,
    aborted: u64,
    abandoned: u64,
    probes: u64,
    retries: u64,
    stale_restarts: u64,
    version_skews: u64,
}

impl ResultHandler {
    /// Empty handler.
    pub fn new() -> Self {
        ResultHandler::default()
    }

    /// Record one completed request.
    pub fn record(&mut self, r: &CompletedRequest) {
        let o = &r.outcome;
        self.access.push(o.access as f64);
        self.tuning.push(o.tuning as f64);
        self.access_hist.record(o.access);
        self.tuning_hist.record(o.tuning);
        if o.found {
            self.found += 1;
        } else {
            self.not_found += 1;
        }
        self.false_drops += u64::from(o.false_drops);
        self.probes += u64::from(o.probes);
        self.retries += u64::from(o.retries);
        self.retry_hist.record(u64::from(o.retries));
        self.abandoned += u64::from(o.abandoned);
        self.aborted += u64::from(o.aborted);
        self.stale_restarts += u64::from(o.stale_restarts);
        self.version_skews += u64::from(o.version_skews);
    }

    /// Record a whole batch.
    pub fn record_all(&mut self, rs: &[CompletedRequest]) {
        for r in rs {
            self.record(r);
        }
    }

    /// Access-time accumulator.
    pub fn access(&self) -> &Welford {
        &self.access
    }

    /// Tuning-time accumulator.
    pub fn tuning(&self) -> &Welford {
        &self.tuning
    }

    /// Requests that found their record.
    pub fn found(&self) -> u64 {
        self.found
    }

    /// Requests whose key was not broadcast.
    pub fn not_found(&self) -> u64 {
        self.not_found
    }

    /// Total requests recorded.
    pub fn total(&self) -> u64 {
        self.found + self.not_found
    }

    /// Total false drops across all requests.
    pub fn false_drops(&self) -> u64 {
        self.false_drops
    }

    /// Total bucket probes across all requests.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Requests aborted by the walker (always 0 for correct protocols).
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Corrupted-read recoveries across all requests (error-prone
    /// channels).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Requests truthfully abandoned by the client's retry policy.
    pub fn abandoned(&self) -> u64 {
        self.abandoned
    }

    /// Stale-protocol restarts across all requests (dynamic broadcast: the
    /// client discarded its machine and re-anchored on a newer program).
    pub fn stale_restarts(&self) -> u64 {
        self.stale_restarts
    }

    /// Version skews observed across all requests (bucket header version ≠
    /// the walk's anchor version; every restart starts with one).
    pub fn version_skews(&self) -> u64 {
        self.version_skews
    }

    /// Mean corrupted reads per request — the paper-style degradation
    /// figure for the error-prone-channel extension.
    pub fn mean_retries(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.retries as f64 / self.total() as f64
        }
    }

    /// Access-time distribution (log-bucketed; p50/p95/p99 etc.).
    pub fn access_histogram(&self) -> &Histogram {
        &self.access_hist
    }

    /// Tuning-time distribution (log-bucketed).
    pub fn tuning_histogram(&self) -> &Histogram {
        &self.tuning_hist
    }

    /// Retry-depth distribution: how many corrupted reads each request
    /// had to ride out (all mass at 0 on a lossless channel).
    pub fn retry_histogram(&self) -> &Histogram {
        &self.retry_hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{AccessOutcome, Key};

    fn req(access: u64, tuning: u64, found: bool) -> CompletedRequest {
        CompletedRequest {
            arrival: 0,
            key: Key(1),
            outcome: AccessOutcome {
                found,
                access,
                tuning,
                probes: 3,
                false_drops: u32::from(!found),
                retries: 0,
                abandoned: false,
                aborted: false,
                stale_restarts: 0,
                version_skews: 0,
            },
        }
    }

    #[test]
    fn accumulates_both_metrics_and_counters() {
        let mut h = ResultHandler::new();
        h.record_all(&[req(100, 10, true), req(300, 30, false)]);
        assert_eq!(h.total(), 2);
        assert_eq!(h.found(), 1);
        assert_eq!(h.not_found(), 1);
        assert_eq!(h.false_drops(), 1);
        assert_eq!(h.probes(), 6);
        assert_eq!(h.aborted(), 0);
        assert_eq!(h.abandoned(), 0);
        assert!((h.access().mean() - 200.0).abs() < 1e-12);
        assert!((h.tuning().mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn degradation_metrics_accumulate() {
        let mut h = ResultHandler::new();
        let mut lossy = req(500, 50, true);
        lossy.outcome.retries = 3;
        let mut gave_up = req(900, 90, false);
        gave_up.outcome.retries = 5;
        gave_up.outcome.abandoned = true;
        h.record_all(&[req(100, 10, true), lossy, gave_up]);
        assert_eq!(h.retries(), 8);
        assert_eq!(h.abandoned(), 1);
        assert!((h.mean_retries() - 8.0 / 3.0).abs() < 1e-12);
        // Retry-depth histogram holds one sample per request.
        assert_eq!(h.retry_histogram().len(), 3);
        assert_eq!(h.retry_histogram().quantile(1.0), 5);
    }

    #[test]
    fn staleness_counters_accumulate() {
        let mut h = ResultHandler::new();
        let mut skewed = req(700, 70, true);
        skewed.outcome.stale_restarts = 2;
        skewed.outcome.version_skews = 3;
        h.record_all(&[req(100, 10, true), skewed]);
        assert_eq!(h.stale_restarts(), 2);
        assert_eq!(h.version_skews(), 3);
    }
}
