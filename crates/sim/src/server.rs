//! The broadcast server (paper §3, `BroadcastServer`) and its dynamic
//! counterpart, [`VersionedServer`].

use bda_core::{
    run_versioned, run_versioned_observed, run_versioned_observed_channel,
    run_versioned_with_channel, run_versioned_with_policy, AccessOutcome, ChannelModel, Dataset,
    DynSystem, Epoch, ErrorModel, Key, ObservedVersionedSlot, Params, PhaseSpans, ProgramTimeline,
    QueryRun, QuerySlot, Record, Result, RetryPolicy, Scheme, System, Ticks, VersionedSlot,
    VersionedWalk,
};

use crate::updates::{UpdateSpec, UpdateStream};

/// Wraps a built broadcast system and answers channel-timing questions —
/// "a process to broadcast data continuously". The channel itself is
/// deterministic (the cycle repeats forever), so the server's job is
/// bookkeeping: cycle geometry and how much has been broadcast by a given
/// instant.
#[derive(Clone, Copy)]
pub struct BroadcastServer<'a> {
    system: &'a dyn DynSystem,
}

impl<'a> BroadcastServer<'a> {
    /// Serve the given broadcast system.
    pub fn new(system: &'a dyn DynSystem) -> Self {
        BroadcastServer { system }
    }

    /// The system being broadcast.
    pub fn system(&self) -> &'a dyn DynSystem {
        self.system
    }

    /// Broadcast-cycle length in bytes (`Bt`).
    pub fn cycle_len(&self) -> Ticks {
        self.system.cycle_len()
    }

    /// Buckets per cycle.
    pub fn buckets_per_cycle(&self) -> usize {
        self.system.num_buckets()
    }

    /// Number of complete cycles broadcast by absolute time `t`.
    ///
    /// A zero-length cycle (a degenerate system broadcasting nothing)
    /// saturates instead of dividing by zero: nothing has been broadcast at
    /// `t == 0`, and "infinitely many" empty cycles fit in any later `t`.
    pub fn cycles_completed(&self, t: Ticks) -> u64 {
        match self.cycle_len() {
            0 if t == 0 => 0,
            0 => u64::MAX,
            cycle => t / cycle,
        }
    }

    /// Position within the current cycle at absolute time `t`. A
    /// zero-length cycle has only one position: 0.
    pub fn cycle_position(&self, t: Ticks) -> Ticks {
        match self.cycle_len() {
            0 => 0,
            cycle => t % cycle,
        }
    }
}

impl std::fmt::Debug for BroadcastServer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BroadcastServer")
            .field("scheme", &self.system.scheme_name())
            .field("cycle_len", &self.cycle_len())
            .field("buckets", &self.buckets_per_cycle())
            .finish()
    }
}

/// A dynamic broadcast server: owns the full air history of a mutating
/// database as a [`ProgramTimeline`], built by replaying a deterministic
/// [`UpdateStream`] against the initial dataset at every cycle boundary.
///
/// `VersionedServer` implements [`DynSystem`] directly, so the slab
/// engine, the reference oracle, and the adaptive simulator all drive it
/// through the same object-safe surface as a frozen system — dynamic mode
/// needs zero engine changes. Queries run as [`VersionedWalk`]s: clients
/// detect version skew from bucket headers and re-anchor mid-walk.
///
/// The reported [`DynSystem::cycle_len`]/[`DynSystem::num_buckets`] are
/// those of the *initial* program (epoch 0): request generators use them
/// to scale arrival horizons, and the initial geometry is the stable
/// reference point (per-epoch geometry is available via
/// [`VersionedServer::timeline`]).
pub struct VersionedServer<S: System> {
    timeline: ProgramTimeline<S>,
    /// `(version, dataset)` snapshots in air order — the ground truth the
    /// differential suite's verdict oracle checks outcomes against.
    datasets: Vec<(u64, Dataset)>,
    spec: UpdateSpec,
}

impl<S: System> VersionedServer<S> {
    /// Build the server: construct the initial program at version 0, then
    /// walk `spec.horizon_cycles` cycle boundaries, applying the update
    /// batch at each. A batch that changes nothing extends the current
    /// epoch (no version bump — crucially, a zero-rate spec yields a
    /// single epoch whose walks are bit-identical to the frozen channel);
    /// a real change bumps the version and rebuilds the program via
    /// [`Scheme::rebuild`].
    pub fn build<Sch>(
        scheme: &Sch,
        dataset: &Dataset,
        params: &Params,
        spec: UpdateSpec,
    ) -> Result<Self>
    where
        Sch: Scheme<System = S>,
    {
        let mut records: Vec<Record> = dataset.records().to_vec();
        let mut stream = UpdateStream::new(spec);
        let mut version = 0u64;
        let mut cur_sys = scheme.rebuild(&Dataset::new(records.clone())?, params, version)?;
        let mut cur_start: Ticks = 0;
        let mut epochs: Vec<Epoch<S>> = Vec::new();
        let mut datasets = vec![(version, Dataset::new(records.clone())?)];
        let mut t: Ticks = 0;
        for _ in 0..spec.horizon_cycles {
            // One full cycle of the current program goes on the air...
            t += cur_sys.channel().cycle_len();
            // ...then the server applies this boundary's batch.
            let batch = stream.next_batch(&records);
            if UpdateStream::apply(&mut records, &batch) > 0 {
                version += 1;
                let next = scheme.rebuild(&Dataset::new(records.clone())?, params, version)?;
                epochs.push(Epoch {
                    system: std::mem::replace(&mut cur_sys, next),
                    start: cur_start,
                });
                cur_start = t;
                datasets.push((version, Dataset::new(records.clone())?));
            }
        }
        epochs.push(Epoch {
            system: cur_sys,
            start: cur_start,
        });
        Ok(VersionedServer {
            timeline: ProgramTimeline::new(epochs)?,
            datasets,
            spec,
        })
    }

    /// The full air history.
    pub fn timeline(&self) -> &ProgramTimeline<S> {
        &self.timeline
    }

    /// `(version, dataset)` snapshots in air order, one per epoch.
    pub fn datasets(&self) -> &[(u64, Dataset)] {
        &self.datasets
    }

    /// The dataset broadcast at `version`, if that version ever aired.
    pub fn dataset_at(&self, version: u64) -> Option<&Dataset> {
        self.datasets
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, d)| d)
    }

    /// The update stream parameters this server was built with.
    pub fn spec(&self) -> UpdateSpec {
        self.spec
    }

    /// Number of program versions that made it onto the air.
    pub fn num_epochs(&self) -> usize {
        self.timeline.epochs().len()
    }
}

impl<S: System> std::fmt::Debug for VersionedServer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedServer")
            .field(
                "scheme",
                &System::scheme_name(&self.timeline.epoch(0).system),
            )
            .field("epochs", &self.num_epochs())
            .field("rate", &self.spec.rate)
            .finish()
    }
}

impl<S: System> DynSystem for VersionedServer<S>
where
    S::Machine: 'static,
{
    fn scheme_name(&self) -> &'static str {
        self.timeline.epoch(0).system.scheme_name()
    }

    fn cycle_len(&self) -> Ticks {
        self.timeline.epoch(0).system.channel().cycle_len()
    }

    fn num_buckets(&self) -> usize {
        self.timeline.epoch(0).system.channel().num_buckets()
    }

    fn probe(&self, key: Key, tune_in: Ticks) -> AccessOutcome {
        run_versioned(&self.timeline, key, tune_in)
    }

    fn probe_with_errors(&self, key: Key, tune_in: Ticks, errors: ErrorModel) -> AccessOutcome {
        run_versioned_with_policy(&self.timeline, key, tune_in, errors, RetryPolicy::UNBOUNDED)
    }

    fn probe_with_policy(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        run_versioned_with_policy(&self.timeline, key, tune_in, errors, policy)
    }

    fn begin(&self, key: Key, tune_in: Ticks) -> Box<dyn QueryRun + '_> {
        Box::new(VersionedWalk::new(&self.timeline, key, tune_in))
    }

    fn begin_with_faults(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        Box::new(VersionedWalk::with_policy(
            &self.timeline,
            key,
            tune_in,
            errors,
            policy,
        ))
    }

    fn make_slot(&self) -> Box<dyn QuerySlot + '_> {
        Box::new(VersionedSlot::new(&self.timeline))
    }

    fn make_slot_with_faults(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(VersionedSlot::with_faults(&self.timeline, errors, policy))
    }

    fn probe_recorded(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        run_versioned_observed(&self.timeline, key, tune_in, errors, policy)
    }

    fn make_slot_observed(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(ObservedVersionedSlot::with_faults(
            &self.timeline,
            errors,
            policy,
        ))
    }

    fn probe_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        run_versioned_with_channel(&self.timeline, key, tune_in, channel, policy)
    }

    fn probe_recorded_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        run_versioned_observed_channel(&self.timeline, key, tune_in, channel, policy)
    }

    fn begin_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        Box::new(VersionedWalk::with_channel(
            &self.timeline,
            key,
            tune_in,
            channel,
            policy,
        ))
    }

    fn make_slot_channel(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(VersionedSlot::with_channel(&self.timeline, channel, policy))
    }

    fn make_slot_channel_observed(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(ObservedVersionedSlot::with_channel(
            &self.timeline,
            channel,
            policy,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{FlatScheme, Record};

    #[test]
    fn server_reports_channel_geometry() {
        let ds = Dataset::new((0..10).map(Record::keyed).collect()).unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let server = BroadcastServer::new(&sys);
        let dt = u64::from(Params::paper().data_bucket_size());
        assert_eq!(server.cycle_len(), 10 * dt);
        assert_eq!(server.buckets_per_cycle(), 10);
        assert_eq!(server.cycles_completed(25 * dt), 2);
        assert_eq!(server.cycle_position(25 * dt), 5 * dt);
        assert!(format!("{server:?}").contains("flat"));
    }

    /// A degenerate system broadcasting nothing, to pin the zero-cycle
    /// saturation behaviour without building an (impossible) empty channel.
    struct SilentSystem;

    impl DynSystem for SilentSystem {
        fn scheme_name(&self) -> &'static str {
            "silent"
        }
        fn cycle_len(&self) -> Ticks {
            0
        }
        fn num_buckets(&self) -> usize {
            0
        }
        fn probe(&self, _: Key, _: Ticks) -> AccessOutcome {
            unimplemented!("silent channel answers no queries")
        }
        fn probe_with_errors(&self, _: Key, _: Ticks, _: ErrorModel) -> AccessOutcome {
            unimplemented!()
        }
        fn probe_with_policy(
            &self,
            _: Key,
            _: Ticks,
            _: ErrorModel,
            _: RetryPolicy,
        ) -> AccessOutcome {
            unimplemented!()
        }
        fn begin(&self, _: Key, _: Ticks) -> Box<dyn QueryRun + '_> {
            unimplemented!()
        }
        fn begin_with_faults(
            &self,
            _: Key,
            _: Ticks,
            _: ErrorModel,
            _: RetryPolicy,
        ) -> Box<dyn QueryRun + '_> {
            unimplemented!()
        }
        fn make_slot(&self) -> Box<dyn QuerySlot + '_> {
            unimplemented!()
        }
        fn make_slot_with_faults(&self, _: ErrorModel, _: RetryPolicy) -> Box<dyn QuerySlot + '_> {
            unimplemented!()
        }
    }

    #[test]
    fn zero_length_cycle_saturates_instead_of_panicking() {
        let server = BroadcastServer::new(&SilentSystem);
        assert_eq!(server.cycles_completed(0), 0);
        assert_eq!(server.cycles_completed(1), u64::MAX);
        assert_eq!(server.cycles_completed(u64::MAX), u64::MAX);
        assert_eq!(server.cycle_position(0), 0);
        assert_eq!(server.cycle_position(12345), 0);
    }

    fn ds(keys: &[u64]) -> Dataset {
        Dataset::new(keys.iter().map(|&k| Record::keyed(k)).collect()).unwrap()
    }

    #[test]
    fn zero_rate_server_is_a_single_frozen_epoch() {
        let d = ds(&[0, 10, 20, 30]);
        let p = Params::paper();
        let server = VersionedServer::build(&FlatScheme, &d, &p, UpdateSpec::rate(0.0, 1)).unwrap();
        assert_eq!(server.num_epochs(), 1);
        assert_eq!(server.timeline().epoch(0).version(), 0);
        let frozen = FlatScheme.build(&d, &p).unwrap();
        for t in [0u64, 17, 500, 9999] {
            for k in [0u64, 20, 35] {
                assert_eq!(server.probe(Key(k), t), frozen.probe(Key(k), t));
            }
        }
    }

    #[test]
    fn updating_server_versions_advance_and_snapshots_match() {
        let d = ds(&[0, 10, 20, 30, 40, 50, 60, 70]);
        let p = Params::paper();
        let server =
            VersionedServer::build(&FlatScheme, &d, &p, UpdateSpec::rate(0.25, 99)).unwrap();
        assert!(server.num_epochs() > 1, "25% churn must produce epochs");
        // Epoch versions strictly increase and each has a dataset snapshot
        // whose keys are exactly what that epoch's program broadcasts.
        let mut prev = None;
        for (i, e) in server.timeline().epochs().iter().enumerate() {
            let v = e.version();
            if let Some(p) = prev {
                assert!(v > p, "epoch {i} version {v} not after {p}");
            }
            prev = Some(v);
            let snap = server.dataset_at(v).expect("snapshot per version");
            assert_eq!(
                e.system.channel().num_buckets(),
                snap.len(),
                "flat program has one bucket per record"
            );
        }
        assert_eq!(server.datasets().len(), server.num_epochs());
        // Determinism: the same spec rebuilds the identical timeline.
        let again =
            VersionedServer::build(&FlatScheme, &d, &p, UpdateSpec::rate(0.25, 99)).unwrap();
        assert_eq!(again.num_epochs(), server.num_epochs());
        for (a, b) in again
            .timeline()
            .epochs()
            .iter()
            .zip(server.timeline().epochs())
        {
            assert_eq!(a.start, b.start);
            assert_eq!(a.version(), b.version());
        }
    }
}
