//! The broadcast server (paper §3, `BroadcastServer`) and its dynamic
//! counterpart, [`VersionedServer`].

use bda_core::{
    channel_model_for, error_model_for, even_partition, patch_outcome, patch_spans, remix_seed,
    run_versioned, run_versioned_observed, run_versioned_observed_channel,
    run_versioned_with_channel, run_versioned_with_policy, AccessOutcome, ChannelModel, Dataset,
    DynSystem, Epoch, ErrorModel, GroupConfig, Key, ObservedVersionedSlot, Params, PhaseSpans,
    ProgramTimeline, QueryRun, QuerySlot, Record, Result, RetryPolicy, Scheme, SwitchedRun, System,
    Ticks, VersionedSlot, VersionedWalk, WalkStep,
};

use crate::updates::{UpdateSpec, UpdateStream};

/// Wraps a built broadcast system and answers channel-timing questions —
/// "a process to broadcast data continuously". The channel itself is
/// deterministic (the cycle repeats forever), so the server's job is
/// bookkeeping: cycle geometry and how much has been broadcast by a given
/// instant.
#[derive(Clone, Copy)]
pub struct BroadcastServer<'a> {
    system: &'a dyn DynSystem,
}

impl<'a> BroadcastServer<'a> {
    /// Serve the given broadcast system.
    pub fn new(system: &'a dyn DynSystem) -> Self {
        BroadcastServer { system }
    }

    /// The system being broadcast.
    pub fn system(&self) -> &'a dyn DynSystem {
        self.system
    }

    /// Broadcast-cycle length in bytes (`Bt`).
    pub fn cycle_len(&self) -> Ticks {
        self.system.cycle_len()
    }

    /// Buckets per cycle.
    pub fn buckets_per_cycle(&self) -> usize {
        self.system.num_buckets()
    }

    /// Number of complete cycles broadcast by absolute time `t`.
    ///
    /// A zero-length cycle (a degenerate system broadcasting nothing)
    /// saturates instead of dividing by zero: nothing has been broadcast at
    /// `t == 0`, and "infinitely many" empty cycles fit in any later `t`.
    pub fn cycles_completed(&self, t: Ticks) -> u64 {
        match self.cycle_len() {
            0 if t == 0 => 0,
            0 => u64::MAX,
            cycle => t / cycle,
        }
    }

    /// Position within the current cycle at absolute time `t`. A
    /// zero-length cycle has only one position: 0.
    pub fn cycle_position(&self, t: Ticks) -> Ticks {
        match self.cycle_len() {
            0 => 0,
            cycle => t % cycle,
        }
    }
}

impl std::fmt::Debug for BroadcastServer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BroadcastServer")
            .field("scheme", &self.system.scheme_name())
            .field("cycle_len", &self.cycle_len())
            .field("buckets", &self.buckets_per_cycle())
            .finish()
    }
}

/// A dynamic broadcast server: owns the full air history of a mutating
/// database as a [`ProgramTimeline`], built by replaying a deterministic
/// [`UpdateStream`] against the initial dataset at every cycle boundary.
///
/// `VersionedServer` implements [`DynSystem`] directly, so the slab
/// engine, the reference oracle, and the adaptive simulator all drive it
/// through the same object-safe surface as a frozen system — dynamic mode
/// needs zero engine changes. Queries run as [`VersionedWalk`]s: clients
/// detect version skew from bucket headers and re-anchor mid-walk.
///
/// The reported [`DynSystem::cycle_len`]/[`DynSystem::num_buckets`] are
/// those of the *initial* program (epoch 0): request generators use them
/// to scale arrival horizons, and the initial geometry is the stable
/// reference point (per-epoch geometry is available via
/// [`VersionedServer::timeline`]).
pub struct VersionedServer<S: System> {
    timeline: ProgramTimeline<S>,
    /// `(version, dataset)` snapshots in air order — the ground truth the
    /// differential suite's verdict oracle checks outcomes against.
    datasets: Vec<(u64, Dataset)>,
    spec: UpdateSpec,
}

impl<S: System> VersionedServer<S> {
    /// Build the server: construct the initial program at version 0, then
    /// walk `spec.horizon_cycles` cycle boundaries, applying the update
    /// batch at each. A batch that changes nothing extends the current
    /// epoch (no version bump — crucially, a zero-rate spec yields a
    /// single epoch whose walks are bit-identical to the frozen channel);
    /// a real change bumps the version and rebuilds the program via
    /// [`Scheme::rebuild`].
    pub fn build<Sch>(
        scheme: &Sch,
        dataset: &Dataset,
        params: &Params,
        spec: UpdateSpec,
    ) -> Result<Self>
    where
        Sch: Scheme<System = S>,
    {
        let mut records: Vec<Record> = dataset.records().to_vec();
        let mut stream = UpdateStream::new(spec);
        let mut version = 0u64;
        let mut cur_sys = scheme.rebuild(&Dataset::new(records.clone())?, params, version)?;
        let mut cur_start: Ticks = 0;
        let mut epochs: Vec<Epoch<S>> = Vec::new();
        let mut datasets = vec![(version, Dataset::new(records.clone())?)];
        let mut t: Ticks = 0;
        for _ in 0..spec.horizon_cycles {
            // One full cycle of the current program goes on the air...
            t += cur_sys.channel().cycle_len();
            // ...then the server applies this boundary's batch.
            let batch = stream.next_batch(&records);
            if UpdateStream::apply(&mut records, &batch) > 0 {
                version += 1;
                let next = scheme.rebuild(&Dataset::new(records.clone())?, params, version)?;
                epochs.push(Epoch {
                    system: std::mem::replace(&mut cur_sys, next),
                    start: cur_start,
                });
                cur_start = t;
                datasets.push((version, Dataset::new(records.clone())?));
            }
        }
        epochs.push(Epoch {
            system: cur_sys,
            start: cur_start,
        });
        Ok(VersionedServer {
            timeline: ProgramTimeline::new(epochs)?,
            datasets,
            spec,
        })
    }

    /// The full air history.
    pub fn timeline(&self) -> &ProgramTimeline<S> {
        &self.timeline
    }

    /// `(version, dataset)` snapshots in air order, one per epoch.
    pub fn datasets(&self) -> &[(u64, Dataset)] {
        &self.datasets
    }

    /// The dataset broadcast at `version`, if that version ever aired.
    pub fn dataset_at(&self, version: u64) -> Option<&Dataset> {
        self.datasets
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, d)| d)
    }

    /// The update stream parameters this server was built with.
    pub fn spec(&self) -> UpdateSpec {
        self.spec
    }

    /// Number of program versions that made it onto the air.
    pub fn num_epochs(&self) -> usize {
        self.timeline.epochs().len()
    }
}

impl<S: System> std::fmt::Debug for VersionedServer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VersionedServer")
            .field(
                "scheme",
                &System::scheme_name(&self.timeline.epoch(0).system),
            )
            .field("epochs", &self.num_epochs())
            .field("rate", &self.spec.rate)
            .finish()
    }
}

impl<S: System> DynSystem for VersionedServer<S>
where
    S::Machine: 'static,
{
    fn scheme_name(&self) -> &'static str {
        self.timeline.epoch(0).system.scheme_name()
    }

    fn cycle_len(&self) -> Ticks {
        self.timeline.epoch(0).system.channel().cycle_len()
    }

    fn num_buckets(&self) -> usize {
        self.timeline.epoch(0).system.channel().num_buckets()
    }

    fn probe(&self, key: Key, tune_in: Ticks) -> AccessOutcome {
        run_versioned(&self.timeline, key, tune_in)
    }

    fn probe_with_errors(&self, key: Key, tune_in: Ticks, errors: ErrorModel) -> AccessOutcome {
        run_versioned_with_policy(&self.timeline, key, tune_in, errors, RetryPolicy::UNBOUNDED)
    }

    fn probe_with_policy(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        run_versioned_with_policy(&self.timeline, key, tune_in, errors, policy)
    }

    fn begin(&self, key: Key, tune_in: Ticks) -> Box<dyn QueryRun + '_> {
        Box::new(VersionedWalk::new(&self.timeline, key, tune_in))
    }

    fn begin_with_faults(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        Box::new(VersionedWalk::with_policy(
            &self.timeline,
            key,
            tune_in,
            errors,
            policy,
        ))
    }

    fn make_slot(&self) -> Box<dyn QuerySlot + '_> {
        Box::new(VersionedSlot::new(&self.timeline))
    }

    fn make_slot_with_faults(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(VersionedSlot::with_faults(&self.timeline, errors, policy))
    }

    fn probe_recorded(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        run_versioned_observed(&self.timeline, key, tune_in, errors, policy)
    }

    fn make_slot_observed(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(ObservedVersionedSlot::with_faults(
            &self.timeline,
            errors,
            policy,
        ))
    }

    fn probe_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        run_versioned_with_channel(&self.timeline, key, tune_in, channel, policy)
    }

    fn probe_recorded_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        run_versioned_observed_channel(&self.timeline, key, tune_in, channel, policy)
    }

    fn begin_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        Box::new(VersionedWalk::with_channel(
            &self.timeline,
            key,
            tune_in,
            channel,
            policy,
        ))
    }

    fn make_slot_channel(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(VersionedSlot::with_channel(&self.timeline, channel, policy))
    }

    fn make_slot_channel_observed(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(ObservedVersionedSlot::with_channel(
            &self.timeline,
            channel,
            policy,
        ))
    }
}

/// A striped **dynamic** broadcast group — the multichannel counterpart
/// of [`VersionedServer`]: the key-sorted dataset is split into
/// contiguous slices, each slice becomes its own [`VersionedServer`] on
/// its own channel (under [`Params::scaled`] dilation for equal aggregate
/// bandwidth), and each channel's update stream runs with a
/// deterministically remixed seed ([`remix_seed`]) so churn is
/// decorrelated across channels while channel 0 keeps the base stream.
///
/// Routing uses the **initial** partition's bounds, frozen for the whole
/// horizon. A known wart follows: an update stream may insert a key
/// outside its slice's initial key range, and such a key still routes by
/// the frozen bounds — the covering channel answers not-found from the
/// air even though a *different* channel broadcasts the record.
/// Cross-slice rebalancing is a server-side re-partition (a new group
/// build), not something a client-side routing directory can track;
/// every driver sees the same frozen directory, so cross-driver
/// equivalence is unaffected.
pub struct StripedVersionedServer<S: System> {
    channels: Vec<VersionedServer<S>>,
    bounds: Vec<u64>,
    switch_cost: Ticks,
}

impl<S: System> StripedVersionedServer<S> {
    /// Build the group: even contiguous partition of `dataset` over
    /// `config.channels` (clamped to the dataset size), one versioned
    /// server per slice, channel `g`'s update stream seeded with
    /// `remix_seed(spec.seed, g)`.
    pub fn build<Sch>(
        scheme: &Sch,
        dataset: &Dataset,
        params: &Params,
        config: GroupConfig,
        spec: UpdateSpec,
    ) -> Result<Self>
    where
        Sch: Scheme<System = S>,
    {
        let n = dataset.len();
        let k = (config.channels as usize).min(n).max(1);
        let sizes = even_partition(n, k);
        let scaled = params.scaled(k as u32);
        let mut channels = Vec::with_capacity(k);
        let mut bounds = Vec::with_capacity(k);
        let mut lo = 0usize;
        for (g, &len) in sizes.iter().enumerate() {
            let slice = &dataset.records()[lo..lo + len];
            bounds.push(slice[0].key.0);
            let slice_ds = Dataset::new(slice.to_vec())?;
            let slice_spec = UpdateSpec {
                seed: remix_seed(spec.seed, g as u32),
                ..spec
            };
            channels.push(VersionedServer::build(
                scheme, &slice_ds, &scaled, slice_spec,
            )?);
            lo += len;
        }
        Ok(StripedVersionedServer {
            channels,
            bounds,
            switch_cost: config.switch_cost,
        })
    }

    /// Number of channels in the group.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Air time one retune costs, in ticks.
    pub fn switch_cost(&self) -> Ticks {
        self.switch_cost
    }

    /// Channel `g`'s versioned server.
    pub fn channel_server(&self, g: usize) -> &VersionedServer<S> {
        &self.channels[g]
    }

    /// The frozen routing directory: first initial key of each slice.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// The channel a query for `key` tunes to.
    pub fn route(&self, key: Key) -> usize {
        self.bounds
            .partition_point(|&b| b <= key.0)
            .saturating_sub(1)
    }

    fn route_with_cost(&self, key: Key) -> (usize, Ticks) {
        let g = self.route(key);
        let sw = if g == 0 { 0 } else { self.switch_cost };
        (g, sw)
    }
}

impl<S: System> std::fmt::Debug for StripedVersionedServer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StripedVersionedServer")
            .field(
                "scheme",
                &System::scheme_name(&self.channels[0].timeline().epoch(0).system),
            )
            .field("channels", &self.channels.len())
            .field("switch_cost", &self.switch_cost)
            .finish()
    }
}

/// The reusable [`QuerySlot`] of a striped versioned group: routes each
/// query at [`QuerySlot::start`], arms the target channel's own
/// (versioned) slot behind the channel-derived fault model, and patches
/// the switch cost into the final outcome and spans.
struct RoutedVersionedSlot<'a, S: System>
where
    S::Machine: 'static,
{
    server: &'a StripedVersionedServer<S>,
    base: ChannelModel,
    policy: RetryPolicy,
    observed: bool,
    ff: bool,
    inner: Option<Box<dyn QuerySlot + 'a>>,
    pending: Ticks,
    patched: Option<PhaseSpans>,
}

impl<'a, S: System> RoutedVersionedSlot<'a, S>
where
    S::Machine: 'static,
{
    fn new(
        server: &'a StripedVersionedServer<S>,
        base: ChannelModel,
        policy: RetryPolicy,
        observed: bool,
    ) -> Self {
        RoutedVersionedSlot {
            server,
            base,
            policy,
            observed,
            ff: false,
            inner: None,
            pending: 0,
            patched: None,
        }
    }
}

impl<S: System> QuerySlot for RoutedVersionedSlot<'_, S>
where
    S::Machine: 'static,
{
    fn start(&mut self, key: Key, tune_in: Ticks) {
        let (g, sw) = self.server.route_with_cost(key);
        let ch = &self.server.channels[g];
        let model = channel_model_for(self.base, g as u32);
        let mut inner = if self.observed {
            ch.make_slot_channel_observed(model, self.policy)
        } else {
            ch.make_slot_channel(model, self.policy)
        };
        inner.set_fast_forward(self.ff);
        inner.start(key, tune_in.saturating_add(sw));
        self.inner = Some(inner);
        self.pending = sw;
        self.patched = None;
    }

    fn set_fast_forward(&mut self, enabled: bool) {
        self.ff = enabled;
        if let Some(inner) = self.inner.as_mut() {
            inner.set_fast_forward(enabled);
        }
    }

    fn step(&mut self) -> WalkStep {
        let inner = self.inner.as_mut().expect("QuerySlot::step before start");
        match inner.step() {
            WalkStep::Done(out) => {
                if self.observed {
                    let spans = inner.spans().copied().unwrap_or_default();
                    self.patched = Some(patch_spans(spans, self.pending));
                }
                WalkStep::Done(patch_outcome(out, self.pending))
            }
            s => s,
        }
    }

    fn now(&self) -> Ticks {
        self.inner
            .as_ref()
            .expect("QuerySlot::now before start")
            .now()
    }

    fn is_done(&self) -> bool {
        self.inner.as_ref().map_or(true, |i| i.is_done())
    }

    fn spans(&self) -> Option<&PhaseSpans> {
        if !self.observed {
            return None;
        }
        self.patched
            .as_ref()
            .or_else(|| self.inner.as_ref().and_then(|i| i.spans()))
    }
}

impl<S: System> DynSystem for StripedVersionedServer<S>
where
    S::Machine: 'static,
{
    fn scheme_name(&self) -> &'static str {
        DynSystem::scheme_name(&self.channels[0])
    }

    fn cycle_len(&self) -> Ticks {
        // The longest per-channel cycle — same convention as the frozen
        // striped group.
        self.channels
            .iter()
            .map(DynSystem::cycle_len)
            .max()
            .unwrap_or(0)
    }

    fn num_buckets(&self) -> usize {
        self.channels.iter().map(DynSystem::num_buckets).sum()
    }

    fn probe(&self, key: Key, tune_in: Ticks) -> AccessOutcome {
        let (g, sw) = self.route_with_cost(key);
        patch_outcome(self.channels[g].probe(key, tune_in.saturating_add(sw)), sw)
    }

    fn probe_with_errors(&self, key: Key, tune_in: Ticks, errors: ErrorModel) -> AccessOutcome {
        self.probe_with_policy(key, tune_in, errors, RetryPolicy::UNBOUNDED)
    }

    fn probe_with_policy(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        let (g, sw) = self.route_with_cost(key);
        patch_outcome(
            self.channels[g].probe_with_policy(
                key,
                tune_in.saturating_add(sw),
                error_model_for(errors, g as u32),
                policy,
            ),
            sw,
        )
    }

    fn begin(&self, key: Key, tune_in: Ticks) -> Box<dyn QueryRun + '_> {
        let (g, sw) = self.route_with_cost(key);
        let run = self.channels[g].begin(key, tune_in.saturating_add(sw));
        if sw == 0 {
            run
        } else {
            Box::new(SwitchedRun::new(run, sw))
        }
    }

    fn begin_with_faults(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        let (g, sw) = self.route_with_cost(key);
        let run = self.channels[g].begin_with_faults(
            key,
            tune_in.saturating_add(sw),
            error_model_for(errors, g as u32),
            policy,
        );
        if sw == 0 {
            run
        } else {
            Box::new(SwitchedRun::new(run, sw))
        }
    }

    fn make_slot(&self) -> Box<dyn QuerySlot + '_> {
        Box::new(RoutedVersionedSlot::new(
            self,
            ChannelModel::NONE,
            RetryPolicy::UNBOUNDED,
            false,
        ))
    }

    fn make_slot_with_faults(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(RoutedVersionedSlot::new(self, errors.into(), policy, false))
    }

    fn probe_recorded(
        &self,
        key: Key,
        tune_in: Ticks,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        let (g, sw) = self.route_with_cost(key);
        let (out, spans) = self.channels[g].probe_recorded(
            key,
            tune_in.saturating_add(sw),
            error_model_for(errors, g as u32),
            policy,
        );
        (patch_outcome(out, sw), patch_spans(spans, sw))
    }

    fn make_slot_observed(
        &self,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(RoutedVersionedSlot::new(self, errors.into(), policy, true))
    }

    fn probe_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> AccessOutcome {
        let (g, sw) = self.route_with_cost(key);
        patch_outcome(
            self.channels[g].probe_with_channel(
                key,
                tune_in.saturating_add(sw),
                channel_model_for(channel, g as u32),
                policy,
            ),
            sw,
        )
    }

    fn probe_recorded_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> (AccessOutcome, PhaseSpans) {
        let (g, sw) = self.route_with_cost(key);
        let (out, spans) = self.channels[g].probe_recorded_channel(
            key,
            tune_in.saturating_add(sw),
            channel_model_for(channel, g as u32),
            policy,
        );
        (patch_outcome(out, sw), patch_spans(spans, sw))
    }

    fn begin_with_channel(
        &self,
        key: Key,
        tune_in: Ticks,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QueryRun + '_> {
        let (g, sw) = self.route_with_cost(key);
        let run = self.channels[g].begin_with_channel(
            key,
            tune_in.saturating_add(sw),
            channel_model_for(channel, g as u32),
            policy,
        );
        if sw == 0 {
            run
        } else {
            Box::new(SwitchedRun::new(run, sw))
        }
    }

    fn make_slot_channel(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(RoutedVersionedSlot::new(self, channel, policy, false))
    }

    fn make_slot_channel_observed(
        &self,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Box<dyn QuerySlot + '_> {
        Box::new(RoutedVersionedSlot::new(self, channel, policy, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{FlatScheme, Record};

    #[test]
    fn server_reports_channel_geometry() {
        let ds = Dataset::new((0..10).map(Record::keyed).collect()).unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let server = BroadcastServer::new(&sys);
        let dt = u64::from(Params::paper().data_bucket_size());
        assert_eq!(server.cycle_len(), 10 * dt);
        assert_eq!(server.buckets_per_cycle(), 10);
        assert_eq!(server.cycles_completed(25 * dt), 2);
        assert_eq!(server.cycle_position(25 * dt), 5 * dt);
        assert!(format!("{server:?}").contains("flat"));
    }

    /// A degenerate system broadcasting nothing, to pin the zero-cycle
    /// saturation behaviour without building an (impossible) empty channel.
    struct SilentSystem;

    impl DynSystem for SilentSystem {
        fn scheme_name(&self) -> &'static str {
            "silent"
        }
        fn cycle_len(&self) -> Ticks {
            0
        }
        fn num_buckets(&self) -> usize {
            0
        }
        fn probe(&self, _: Key, _: Ticks) -> AccessOutcome {
            unimplemented!("silent channel answers no queries")
        }
        fn probe_with_errors(&self, _: Key, _: Ticks, _: ErrorModel) -> AccessOutcome {
            unimplemented!()
        }
        fn probe_with_policy(
            &self,
            _: Key,
            _: Ticks,
            _: ErrorModel,
            _: RetryPolicy,
        ) -> AccessOutcome {
            unimplemented!()
        }
        fn begin(&self, _: Key, _: Ticks) -> Box<dyn QueryRun + '_> {
            unimplemented!()
        }
        fn begin_with_faults(
            &self,
            _: Key,
            _: Ticks,
            _: ErrorModel,
            _: RetryPolicy,
        ) -> Box<dyn QueryRun + '_> {
            unimplemented!()
        }
        fn make_slot(&self) -> Box<dyn QuerySlot + '_> {
            unimplemented!()
        }
        fn make_slot_with_faults(&self, _: ErrorModel, _: RetryPolicy) -> Box<dyn QuerySlot + '_> {
            unimplemented!()
        }
    }

    #[test]
    fn zero_length_cycle_saturates_instead_of_panicking() {
        let server = BroadcastServer::new(&SilentSystem);
        assert_eq!(server.cycles_completed(0), 0);
        assert_eq!(server.cycles_completed(1), u64::MAX);
        assert_eq!(server.cycles_completed(u64::MAX), u64::MAX);
        assert_eq!(server.cycle_position(0), 0);
        assert_eq!(server.cycle_position(12345), 0);
    }

    fn ds(keys: &[u64]) -> Dataset {
        Dataset::new(keys.iter().map(|&k| Record::keyed(k)).collect()).unwrap()
    }

    #[test]
    fn zero_rate_server_is_a_single_frozen_epoch() {
        let d = ds(&[0, 10, 20, 30]);
        let p = Params::paper();
        let server = VersionedServer::build(&FlatScheme, &d, &p, UpdateSpec::rate(0.0, 1)).unwrap();
        assert_eq!(server.num_epochs(), 1);
        assert_eq!(server.timeline().epoch(0).version(), 0);
        let frozen = FlatScheme.build(&d, &p).unwrap();
        for t in [0u64, 17, 500, 9999] {
            for k in [0u64, 20, 35] {
                assert_eq!(server.probe(Key(k), t), frozen.probe(Key(k), t));
            }
        }
    }

    #[test]
    fn striped_k1_zero_rate_is_bit_identical_to_the_plain_server() {
        let d = ds(&[0, 10, 20, 30, 40, 50]);
        let p = Params::paper();
        let spec = UpdateSpec::rate(0.0, 7);
        let plain = VersionedServer::build(&FlatScheme, &d, &p, spec).unwrap();
        let striped = StripedVersionedServer::build(
            &FlatScheme,
            &d,
            &p,
            bda_core::GroupConfig::new(1, 9_999).unwrap(),
            spec,
        )
        .unwrap();
        assert_eq!(striped.num_channels(), 1);
        for t in [0u64, 17, 500, 9999] {
            for k in [0u64, 30, 55] {
                assert_eq!(striped.probe(Key(k), t), plain.probe(Key(k), t));
            }
        }
    }

    #[test]
    fn striped_zero_rate_matches_the_frozen_striped_group() {
        let d = ds(&[0, 10, 20, 30, 40, 50, 60, 70, 80]);
        let p = Params::paper();
        let config = bda_core::GroupConfig::new(3, 700).unwrap();
        let frozen = bda_core::StripedScheme::new(FlatScheme, config)
            .build(&d, &p)
            .unwrap();
        let striped =
            StripedVersionedServer::build(&FlatScheme, &d, &p, config, UpdateSpec::rate(0.0, 3))
                .unwrap();
        assert_eq!(striped.bounds(), frozen.bounds());
        for t in [0u64, 123, 4567] {
            for k in [0u64, 25, 30, 60, 85, 95] {
                assert_eq!(
                    striped.probe(Key(k), t),
                    frozen.probe(Key(k), t),
                    "key {k} at t={t}"
                );
            }
        }
    }

    #[test]
    fn striped_churn_decorrelates_channels_and_stays_deterministic() {
        let d = ds(&(0..32).map(|i| i * 10).collect::<Vec<_>>());
        let p = Params::paper();
        let config = bda_core::GroupConfig::new(4, 512).unwrap();
        let spec = UpdateSpec::rate(0.25, 41);
        let a = StripedVersionedServer::build(&FlatScheme, &d, &p, config, spec).unwrap();
        assert_eq!(a.num_channels(), 4);
        assert!(
            (0..4).any(|g| a.channel_server(g).num_epochs() > 1),
            "25% churn must version at least one channel"
        );
        // Channel epoch histories differ (remixed seeds decorrelate them)…
        let histories: Vec<Vec<Ticks>> = (0..4)
            .map(|g| {
                a.channel_server(g)
                    .timeline()
                    .epochs()
                    .iter()
                    .map(|e| e.start)
                    .collect()
            })
            .collect();
        assert!(
            histories.iter().any(|h| h != &histories[0]),
            "all channels churned identically: {histories:?}"
        );
        // …while the whole group stays reproducible.
        let b = StripedVersionedServer::build(&FlatScheme, &d, &p, config, spec).unwrap();
        for t in [0u64, 999, 31_337] {
            for k in [0u64, 105, 200, 315] {
                assert_eq!(a.probe(Key(k), t), b.probe(Key(k), t));
            }
        }
    }

    #[test]
    fn updating_server_versions_advance_and_snapshots_match() {
        let d = ds(&[0, 10, 20, 30, 40, 50, 60, 70]);
        let p = Params::paper();
        let server =
            VersionedServer::build(&FlatScheme, &d, &p, UpdateSpec::rate(0.25, 99)).unwrap();
        assert!(server.num_epochs() > 1, "25% churn must produce epochs");
        // Epoch versions strictly increase and each has a dataset snapshot
        // whose keys are exactly what that epoch's program broadcasts.
        let mut prev = None;
        for (i, e) in server.timeline().epochs().iter().enumerate() {
            let v = e.version();
            if let Some(p) = prev {
                assert!(v > p, "epoch {i} version {v} not after {p}");
            }
            prev = Some(v);
            let snap = server.dataset_at(v).expect("snapshot per version");
            assert_eq!(
                e.system.channel().num_buckets(),
                snap.len(),
                "flat program has one bucket per record"
            );
        }
        assert_eq!(server.datasets().len(), server.num_epochs());
        // Determinism: the same spec rebuilds the identical timeline.
        let again =
            VersionedServer::build(&FlatScheme, &d, &p, UpdateSpec::rate(0.25, 99)).unwrap();
        assert_eq!(again.num_epochs(), server.num_epochs());
        for (a, b) in again
            .timeline()
            .epochs()
            .iter()
            .zip(server.timeline().epochs())
        {
            assert_eq!(a.start, b.start);
            assert_eq!(a.version(), b.version());
        }
    }
}
