//! The broadcast server (paper §3, `BroadcastServer`).

use bda_core::{DynSystem, Ticks};

/// Wraps a built broadcast system and answers channel-timing questions —
/// "a process to broadcast data continuously". The channel itself is
/// deterministic (the cycle repeats forever), so the server's job is
/// bookkeeping: cycle geometry and how much has been broadcast by a given
/// instant.
#[derive(Clone, Copy)]
pub struct BroadcastServer<'a> {
    system: &'a dyn DynSystem,
}

impl<'a> BroadcastServer<'a> {
    /// Serve the given broadcast system.
    pub fn new(system: &'a dyn DynSystem) -> Self {
        BroadcastServer { system }
    }

    /// The system being broadcast.
    pub fn system(&self) -> &'a dyn DynSystem {
        self.system
    }

    /// Broadcast-cycle length in bytes (`Bt`).
    pub fn cycle_len(&self) -> Ticks {
        self.system.cycle_len()
    }

    /// Buckets per cycle.
    pub fn buckets_per_cycle(&self) -> usize {
        self.system.num_buckets()
    }

    /// Number of complete cycles broadcast by absolute time `t`.
    pub fn cycles_completed(&self, t: Ticks) -> u64 {
        t / self.cycle_len()
    }

    /// Position within the current cycle at absolute time `t`.
    pub fn cycle_position(&self, t: Ticks) -> Ticks {
        t % self.cycle_len()
    }
}

impl std::fmt::Debug for BroadcastServer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BroadcastServer")
            .field("scheme", &self.system.scheme_name())
            .field("cycle_len", &self.cycle_len())
            .field("buckets", &self.buckets_per_cycle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{Dataset, FlatScheme, Params, Record, Scheme};

    #[test]
    fn server_reports_channel_geometry() {
        let ds = Dataset::new((0..10).map(Record::keyed).collect()).unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let server = BroadcastServer::new(&sys);
        let dt = u64::from(Params::paper().data_bucket_size());
        assert_eq!(server.cycle_len(), 10 * dt);
        assert_eq!(server.buckets_per_cycle(), 10);
        assert_eq!(server.cycles_completed(25 * dt), 2);
        assert_eq!(server.cycle_position(25 * dt), 5 * dt);
        assert!(format!("{server:?}").contains("flat"));
    }
}
