//! Sharded multi-core execution of the slab engine.
//!
//! A single [`Engine`] run is inherently sequential: one wakeup scheduler,
//! one slab arena, one thread. But clients of a broadcast channel never
//! interact — the broadcast program is immutable within a run
//! ([`bda_core::DynSystem`] is `Sync`; a
//! [`crate::server::VersionedServer`]'s epoch timeline is built once and
//! only read afterwards), every request's fault RNG is seeded from the
//! request itself, and each walk touches nothing but its own slot. So a
//! request batch can be **partitioned by request index across `N` worker
//! shards**, each shard owning a private slab arena, free list and
//! bucket-aligned wakeup scheduler over the *shared read-only program*,
//! and the per-request outcomes are exactly what the single engine would
//! have produced.
//!
//! # Deterministic merge
//!
//! Each shard returns its completions in submission order; the merge
//! scatters shard `s`'s `j`-th completion back to request index
//! `s + j·N` (round-robin partition), so the merged vector is in request
//! order — **bit-identical to [`crate::run_requests`] for every shard
//! count**, including under fault injection, bounded retries and
//! broadcast churn. Aggregated statistics merge exactly too:
//!
//! * [`EngineStats`] counters sum ([`EngineStats::merge`]); the
//!   per-request projection ([`EngineStats::outcome_counters`]) is
//!   invariant under sharding.
//! * [`MetricsHub`]s fold via the mergeable-histogram API: histogram bins
//!   share one fixed layout, so the merged access/tuning/retry-depth
//!   distributions (and their percentiles) equal the single-engine ones
//!   bin for bin. Only the engine occupancy *gauges* are scheduler-shaped
//!   and keep per-shard sampling grids.
//!
//! The `engine_sharded_equiv` suite pins all of this across shard counts
//! {1, 2, 3, 7, #cores} × all eight schemes × {lossless, lossy, churn},
//! plus arbitrary (non-round-robin) partitions by property test.

use std::time::Instant;

use bda_core::{ChannelModel, DynSystem, ErrorModel, Key, RetryPolicy, Ticks};
use bda_obs::{MetricsHub, WindowSpec};

use crate::engine::{CompletedRequest, Engine, EngineStats};

/// Wall-clock accounting for one shard's share of the most recent batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardRun {
    /// Shard index (0-based).
    pub shard: usize,
    /// Requests this shard executed in the batch.
    pub requests: u64,
    /// Walker steps this shard processed in the batch.
    pub events: u64,
    /// Wall-clock seconds the shard's worker spent in `run_batch`.
    pub elapsed_sec: f64,
}

impl ShardRun {
    /// This shard's throughput over the batch (requests per wall-clock
    /// second; 0 when nothing ran).
    pub fn requests_per_sec(&self) -> f64 {
        if self.elapsed_sec > 0.0 {
            self.requests as f64 / self.elapsed_sec
        } else {
            0.0
        }
    }
}

/// `N` independent slab engines over one shared broadcast program.
///
/// Construction is cheap (arenas fill lazily); like [`Engine`], a
/// `ShardedEngine` is reusable across batches and its arenas persist, so
/// repeated rounds run allocation-free after warm-up. With `shards == 1`
/// everything runs inline on the caller's thread — no threads are
/// spawned, making the 1-shard configuration literally the single
/// engine.
pub struct ShardedEngine<'a> {
    shards: Vec<Engine<'a>>,
    last_runs: Vec<ShardRun>,
    last_merge_sec: f64,
}

impl<'a> ShardedEngine<'a> {
    /// A sharded engine over a lossless channel.
    pub fn new(system: &'a dyn DynSystem, shards: usize) -> Self {
        ShardedEngine::with_faults(system, shards, ErrorModel::NONE, RetryPolicy::UNBOUNDED)
    }

    /// A sharded engine whose clients all experience the error-prone
    /// channel `errors` and recover per `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_faults(
        system: &'a dyn DynSystem,
        shards: usize,
        errors: ErrorModel,
        policy: RetryPolicy,
    ) -> Self {
        ShardedEngine::with_channel(system, shards, errors.into(), policy)
    }

    /// A sharded engine whose clients all experience the unified
    /// [`ChannelModel`] `channel` (burst loss, outage windows, or both) —
    /// still bit-identical across shard counts, because corruption and
    /// outages are pure functions of bucket instant + seed.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn with_channel(
        system: &'a dyn DynSystem,
        shards: usize,
        channel: ChannelModel,
        policy: RetryPolicy,
    ) -> Self {
        assert!(shards >= 1, "a sharded engine needs at least one shard");
        ShardedEngine {
            shards: (0..shards)
                .map(|_| Engine::with_channel(system, channel, policy))
                .collect(),
            last_runs: Vec::new(),
            last_merge_sec: 0.0,
        }
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Enable or disable analytical fast-forward on every shard (on by
    /// default; see [`Engine::set_fast_forward`]). Outcomes, accounting
    /// and merged metrics are identical either way — only event counts
    /// change.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        for e in &mut self.shards {
            e.set_fast_forward(enabled);
        }
    }

    /// Turn on metrics collection on every shard. Same idle-arena
    /// requirement as [`Engine::enable_metrics`].
    pub fn enable_metrics(&mut self) {
        for e in &mut self.shards {
            e.enable_metrics();
        }
    }

    /// Turn on time-resolved metrics collection on every shard: each
    /// shard's hub carries a windowed time series with the same `spec`,
    /// so [`ShardedEngine::take_metrics`] merges them window-by-window
    /// (the per-window outcome counters are invariant under sharding) and
    /// [`ShardedEngine::take_shard_metrics`] exposes per-shard busy/idle
    /// tick attribution for load-imbalance analysis.
    pub fn enable_metrics_windowed(&mut self, spec: WindowSpec) {
        for e in &mut self.shards {
            e.enable_metrics_windowed(spec);
        }
    }

    /// Detach and deterministically merge the per-shard metrics hubs (in
    /// shard order), disabling further collection. The merged histograms,
    /// spans and counters are bit-identical to a single-engine observed
    /// run of the same batches; the occupancy gauges keep per-shard
    /// sampling grids (merged via the order-tagged gauge merge).
    pub fn take_metrics(&mut self) -> Option<MetricsHub> {
        MetricsHub::merged(self.take_shard_metrics())
    }

    /// Detach the per-shard metrics hubs **unmerged**, in shard order,
    /// disabling further collection. Shards that never had metrics
    /// enabled are skipped. This is the load-attribution surface: each
    /// hub's windowed time series carries that shard's own busy ticks,
    /// wake batches and in-flight high-water per window.
    pub fn take_shard_metrics(&mut self) -> Vec<MetricsHub> {
        self.shards
            .iter_mut()
            .filter_map(Engine::take_metrics)
            .collect()
    }

    /// Counters accumulated over everything this engine has run, merged
    /// across shards (see [`EngineStats::merge`] for the semantics of
    /// each field under merging).
    pub fn stats(&self) -> EngineStats {
        let mut merged = EngineStats::default();
        for e in &self.shards {
            merged.merge(&e.stats());
        }
        merged
    }

    /// Per-shard cumulative counters, in shard order.
    pub fn shard_stats(&self) -> Vec<EngineStats> {
        self.shards.iter().map(Engine::stats).collect()
    }

    /// Wall-clock accounting of the most recent [`ShardedEngine::run_batch`],
    /// one entry per shard — the per-shard throughput the bench harness
    /// exports.
    pub fn last_runs(&self) -> &[ShardRun] {
        &self.last_runs
    }

    /// Wall-clock seconds the most recent [`ShardedEngine::run_batch`]
    /// spent scattering shard completions back to request order — the
    /// merge-side overhead of sharding (0 on the 1-shard inline path,
    /// where no scatter happens).
    pub fn last_merge_sec(&self) -> f64 {
        self.last_merge_sec
    }

    /// Run a batch of `(arrival, key)` requests to completion, returning
    /// outcomes **in request order** — bit-identical to
    /// [`Engine::run_batch`] on a single engine, for every shard count.
    ///
    /// Requests are partitioned round-robin by index (shard `s` owns
    /// indices `i ≡ s mod N`), each shard runs its share on its own
    /// thread (`std::thread::scope`), and completions scatter back to
    /// their original indices.
    pub fn run_batch(&mut self, requests: &[(Ticks, Key)]) -> Vec<CompletedRequest> {
        let n = self.shards.len();
        if n == 1 {
            let engine = &mut self.shards[0];
            let events_before = engine.stats().events;
            let start = Instant::now();
            let done = engine.run_batch(requests);
            self.last_runs = vec![ShardRun {
                shard: 0,
                requests: requests.len() as u64,
                events: engine.stats().events - events_before,
                elapsed_sec: start.elapsed().as_secs_f64(),
            }];
            self.last_merge_sec = 0.0;
            return done;
        }

        // Round-robin partition: balanced within ±1 request and, because
        // request streams are typically time-ordered, each shard sees the
        // same arrival-time profile.
        let mut parts: Vec<Vec<(Ticks, Key)>> = (0..n)
            .map(|_| Vec::with_capacity(requests.len() / n + 1))
            .collect();
        for (i, &r) in requests.iter().enumerate() {
            parts[i % n].push(r);
        }

        let mut results: Vec<Option<CompletedRequest>> = vec![None; requests.len()];
        let mut runs = vec![ShardRun::default(); n];
        let mut merge_sec = 0.0;
        std::thread::scope(|scope| {
            let workers: Vec<_> = self
                .shards
                .iter_mut()
                .zip(&parts)
                .enumerate()
                .map(|(s, (engine, part))| {
                    scope.spawn(move || {
                        let events_before = engine.stats().events;
                        let start = Instant::now();
                        let done = engine.run_batch(part);
                        let elapsed = start.elapsed().as_secs_f64();
                        (s, done, engine.stats().events - events_before, elapsed)
                    })
                })
                .collect();
            for worker in workers {
                let (s, done, events, elapsed) = worker.join().expect("shard worker panicked");
                runs[s] = ShardRun {
                    shard: s,
                    requests: done.len() as u64,
                    events,
                    elapsed_sec: elapsed,
                };
                let scatter_start = Instant::now();
                for (j, r) in done.into_iter().enumerate() {
                    results[s + j * n] = Some(r);
                }
                merge_sec += scatter_start.elapsed().as_secs_f64();
            }
        });
        self.last_merge_sec = merge_sec;
        self.last_runs = runs;
        results
            .into_iter()
            .map(|r| r.expect("engine invariant: every admitted request completes"))
            .collect()
    }
}

/// Run a batch through `shards` parallel slab engines and return outcomes
/// in request order — bit-identical to [`crate::run_requests`].
pub fn run_requests_sharded(
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    shards: usize,
) -> Vec<CompletedRequest> {
    ShardedEngine::new(system, shards).run_batch(requests)
}

/// [`run_requests_sharded`] over an error-prone channel with a client
/// retry policy — bit-identical to [`crate::run_requests_with_faults`]:
/// corruption is a pure function of each bucket occurrence's broadcast
/// instant and the model seed, so shard placement cannot change what any
/// client sees.
pub fn run_requests_sharded_with_faults(
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    shards: usize,
    errors: ErrorModel,
    policy: RetryPolicy,
) -> Vec<CompletedRequest> {
    ShardedEngine::with_faults(system, shards, errors, policy).run_batch(requests)
}

/// [`run_requests_sharded`] over a unified [`ChannelModel`] — bit-identical
/// to [`crate::run_requests_channel`] for every shard count.
pub fn run_requests_sharded_channel(
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    shards: usize,
    channel: ChannelModel,
    policy: RetryPolicy,
) -> Vec<CompletedRequest> {
    ShardedEngine::with_channel(system, shards, channel, policy).run_batch(requests)
}

/// [`run_requests_sharded_with_faults`] with the observability layer on:
/// per-shard hubs are merged deterministically (shard order). The merged
/// histograms, spans and completion counters are bit-identical to
/// [`crate::run_requests_observed`]; only the occupancy gauges are
/// per-shard.
pub fn run_requests_sharded_observed(
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    shards: usize,
    errors: ErrorModel,
    policy: RetryPolicy,
) -> (Vec<CompletedRequest>, MetricsHub) {
    let mut engine = ShardedEngine::with_faults(system, shards, errors, policy);
    engine.enable_metrics();
    let completed = engine.run_batch(requests);
    let hub = engine.take_metrics().expect("metrics were enabled");
    (completed, hub)
}

/// Run a batch under an **arbitrary** request→shard assignment
/// (`assignment[i]` names the shard executing request `i`; ids need not
/// be contiguous or dense) and merge back to request order.
///
/// This is the generality proof behind the round-robin fast path: merge
/// correctness depends only on per-request independence, not on how the
/// batch was cut. Shards here execute sequentially — the property suite
/// uses this to check that *any* partition reproduces the unsharded
/// outcomes, independent of thread interleaving.
pub fn run_requests_partitioned(
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    assignment: &[usize],
    errors: ErrorModel,
    policy: RetryPolicy,
) -> Vec<CompletedRequest> {
    assert_eq!(requests.len(), assignment.len(), "one shard id per request");
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, &s) in assignment.iter().enumerate() {
        groups.entry(s).or_default().push(i);
    }
    let mut results: Vec<Option<CompletedRequest>> = vec![None; requests.len()];
    for indices in groups.values() {
        let part: Vec<(Ticks, Key)> = indices.iter().map(|&i| requests[i]).collect();
        let done = Engine::with_faults(system, errors, policy).run_batch(&part);
        for (&i, r) in indices.iter().zip(done) {
            results[i] = Some(r);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("engine invariant: every admitted request completes"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_requests;
    use bda_core::{Dataset, FlatScheme, Params, Record, Scheme};

    fn system() -> impl DynSystem {
        let ds = Dataset::new((0..32).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        FlatScheme.build(&ds, &Params::paper()).unwrap()
    }

    fn requests(n: u64) -> Vec<(Ticks, Key)> {
        (0..n)
            .map(|i| ((i * 613) % 9999, Key((i % 32) * 2)))
            .collect()
    }

    #[test]
    fn sharded_matches_single_for_every_count() {
        let sys = system();
        let reqs = requests(200);
        let single = run_requests(&sys, &reqs);
        for shards in [1, 2, 3, 5, 8] {
            let sharded = run_requests_sharded(&sys, &reqs, shards);
            assert_eq!(single, sharded, "shards={shards}");
        }
    }

    #[test]
    fn merged_stats_project_to_single_engine_counters() {
        let sys = system();
        let reqs = requests(150);
        let mut single = Engine::new(&sys);
        single.run_batch(&reqs);
        for shards in [1, 2, 4] {
            let mut engine = ShardedEngine::new(&sys, shards);
            engine.run_batch(&reqs);
            assert_eq!(
                engine.stats().outcome_counters(),
                single.stats().outcome_counters(),
                "shards={shards}"
            );
            let runs = engine.last_runs();
            assert_eq!(runs.len(), shards);
            let total: u64 = runs.iter().map(|r| r.requests).sum();
            assert_eq!(total, reqs.len() as u64);
            let events: u64 = runs.iter().map(|r| r.events).sum();
            assert_eq!(events, single.stats().events);
        }
    }

    #[test]
    fn arenas_recycle_across_batches_per_shard() {
        let sys = system();
        let reqs = requests(120);
        let mut engine = ShardedEngine::new(&sys, 3);
        engine.run_batch(&reqs);
        let occupied: Vec<usize> = engine.shards.iter().map(Engine::arena_len).collect();
        engine.run_batch(&reqs);
        let again: Vec<usize> = engine.shards.iter().map(Engine::arena_len).collect();
        assert_eq!(
            occupied, again,
            "second identical batch must not grow arenas"
        );
        assert_eq!(engine.stats().completed, 240);
    }

    #[test]
    fn empty_batch_and_fewer_requests_than_shards() {
        let sys = system();
        assert!(run_requests_sharded(&sys, &[], 4).is_empty());
        let reqs = requests(3);
        let single = run_requests(&sys, &reqs);
        assert_eq!(run_requests_sharded(&sys, &reqs, 8), single);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let sys = system();
        let _ = ShardedEngine::new(&sys, 0);
    }

    #[test]
    fn partitioned_with_sparse_ids_matches_unsharded() {
        let sys = system();
        let reqs = requests(90);
        let single = run_requests(&sys, &reqs);
        // Sparse, non-contiguous shard ids.
        let assignment: Vec<usize> = (0..reqs.len()).map(|i| (i * i + 7) % 11 * 3).collect();
        let merged = run_requests_partitioned(
            &sys,
            &reqs,
            &assignment,
            ErrorModel::NONE,
            RetryPolicy::UNBOUNDED,
        );
        assert_eq!(single, merged);
    }
}
