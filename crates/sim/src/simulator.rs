//! The simulation coordinator (paper §3, `Simulator`).
//!
//! Ties the testbed together exactly as the paper's procedure describes:
//! initialization (data source → scheme-specific channel), start
//! (broadcast server + request generator), simulation rounds (500 requests
//! each, results checked against the accuracy controller after every
//! round), and end (result extraction).

use bda_core::{ChannelModel, DynSystem, ErrorModel, RetryPolicy, Ticks};
use bda_datagen::{Arrivals, Popularity, QueryWorkload};
use bda_obs::{Completion, Histogram, MetricsHub, WindowSpec};

use crate::accuracy::AccuracyController;
use crate::engine::{Engine, EngineStats};
use crate::reqgen::RequestGenerator;
use crate::results::ResultHandler;
use crate::sharded::ShardedEngine;
use crate::stats::Summary;
use crate::updates::UpdateSpec;

/// Simulation settings — the knobs of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Confidence level for termination (Table 1: 0.99).
    pub confidence: f64,
    /// Required relative accuracy `H/Ȳ` (Table 1: 0.01).
    pub accuracy: f64,
    /// Requests per simulation round (paper: 500).
    pub round_requests: usize,
    /// Do not stop before this many rounds.
    pub min_rounds: usize,
    /// Hard cap on rounds (safety; the paper reports >100 rounds typical).
    pub max_rounds: usize,
    /// Mean request inter-arrival time in bytes (exponential distribution).
    pub mean_interarrival: f64,
    /// Seed for the request stream.
    pub seed: u64,
    /// Execute rounds through the discrete-event engine (`true`, the
    /// faithful testbed) or via the direct walker (`false`, identical
    /// results — see the `drivers_equiv` integration test — but much less
    /// scheduling overhead; what the sweep harness uses).
    pub event_driven: bool,
    /// Steady-state mode: keep at most this many clients admitted at
    /// once, streaming requests through the engine instead of
    /// materializing whole request batches. `None` (the default) runs the
    /// classic round-batch testbed; `Some(0)` — a cap that could admit
    /// nothing and therefore never complete a round — is treated as
    /// `None`. Only meaningful with `event_driven`; memory becomes
    /// `O(max_in_flight)` regardless of how many requests the accuracy
    /// controller ends up demanding.
    pub max_in_flight: Option<usize>,
    /// Worker shards for the event-driven batch path: each round's batch
    /// is partitioned round-robin across this many per-core slab engines
    /// over the shared broadcast program and merged deterministically
    /// (see [`crate::sharded`]), so reports are bit-identical for every
    /// shard count. `1` (the default, also the meaning of `0`) runs the
    /// classic single engine inline. Steady-state and direct-walker modes
    /// ignore it.
    pub shards: usize,
    /// Fault injection: per-transmission bucket corruption every client
    /// sees ([`ErrorModel::NONE`], the default, is a perfect channel).
    /// Honored identically by the event engine and the direct walker.
    pub errors: ErrorModel,
    /// Correlated-fault injection: when set, this unified [`ChannelModel`]
    /// (burst loss and/or outage windows) **overrides** `errors` on every
    /// execution driver. `None` (the default) keeps the i.i.d. `errors`
    /// path, bit for bit.
    pub channel: Option<ChannelModel>,
    /// Client-side recovery policy for corrupt reads (default: retry
    /// forever — the paper's implicit assumption).
    pub retry: RetryPolicy,
    /// Dynamic-broadcast mode: when set, the harness builds the system
    /// under test as a [`crate::server::VersionedServer`] replaying this
    /// update stream, instead of a frozen channel. The simulator itself
    /// drives whatever [`DynSystem`] it is handed — this field travels
    /// with the config so sweep harnesses and the CLI construct the right
    /// server and label reports. `None` (the default) is the paper's
    /// static broadcast.
    pub updates: Option<UpdateSpec>,
    /// Time-resolved telemetry: when set, observed runs
    /// ([`Simulator::run_observed`]) collect a windowed time series with
    /// this window width in ticks alongside the aggregates (the hub's
    /// `windows` field; see [`bda_obs::TimeSeries`]). `None` (the
    /// default) keeps observation purely aggregate; plain
    /// [`Simulator::run`] ignores it entirely. Purely tick-domain and
    /// honored identically by every execution driver.
    pub window: Option<u64>,
}

impl SimConfig {
    /// The paper's Table-1 settings.
    pub fn paper() -> Self {
        SimConfig {
            confidence: 0.99,
            accuracy: 0.01,
            round_requests: 500,
            min_rounds: 4,
            max_rounds: 2_000,
            mean_interarrival: 10_000.0,
            seed: 0x0EDB_2002,
            event_driven: true,
            max_in_flight: None,
            shards: 1,
            errors: ErrorModel::NONE,
            channel: None,
            retry: RetryPolicy::UNBOUNDED,
            updates: None,
            window: None,
        }
    }

    /// Looser settings for fast tests and examples (95 % / 5 %).
    pub fn quick() -> Self {
        SimConfig {
            confidence: 0.95,
            accuracy: 0.05,
            round_requests: 200,
            min_rounds: 2,
            max_rounds: 200,
            ..SimConfig::paper()
        }
    }

    /// The channel every execution driver runs behind: the explicit
    /// correlated `channel` when set, otherwise the i.i.d. `errors` lifted
    /// into a degenerate (bit-identical) [`ChannelModel`].
    pub fn effective_channel(&self) -> ChannelModel {
        self.channel.unwrap_or_else(|| self.errors.into())
    }

    fn controller(&self) -> AccuracyController {
        AccuracyController {
            confidence: self.confidence,
            accuracy: self.accuracy,
            min_samples: (self.round_requests * self.min_rounds) as u64,
        }
    }
}

/// Everything a finished simulation reports.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scheme under test.
    pub scheme: &'static str,
    /// Rounds executed.
    pub rounds: usize,
    /// Total requests simulated.
    pub requests: u64,
    /// Access-time summary (bytes).
    pub access: Summary,
    /// Tuning-time summary (bytes).
    pub tuning: Summary,
    /// Requests that found their record.
    pub found: u64,
    /// Requests whose key was not broadcast.
    pub not_found: u64,
    /// Total false drops.
    pub false_drops: u64,
    /// Walker-aborted requests — nonzero values indicate a protocol bug.
    pub aborted: u64,
    /// Corrupted bucket reads across all requests (0 on a lossless
    /// channel).
    pub retries: u64,
    /// Requests truthfully abandoned by the retry policy (0 under
    /// [`RetryPolicy::UNBOUNDED`]).
    pub abandoned: u64,
    /// Stale-protocol restarts: clients that discarded their machine and
    /// re-anchored on a newer broadcast program (0 on a frozen channel).
    pub stale_restarts: u64,
    /// Version skews observed in bucket headers (0 on a frozen channel).
    pub version_skews: u64,
    /// Whether the accuracy targets were met (false only if `max_rounds`
    /// was exhausted first).
    pub converged: bool,
    /// Broadcast cycle length of the system under test.
    pub cycle_len: Ticks,
    /// Access-time distribution (log-bucketed histogram).
    pub access_hist: Histogram,
    /// Tuning-time distribution (log-bucketed histogram).
    pub tuning_hist: Histogram,
    /// Retry-depth distribution: corrupted reads ridden out per request.
    pub retry_hist: Histogram,
    /// Engine counters (all zero when the direct-walker fast path ran).
    pub engine: EngineStats,
}

impl SimReport {
    /// Mean access time in bytes (`At`).
    pub fn mean_access(&self) -> f64 {
        self.access.mean
    }

    /// Mean tuning time in bytes (`Tt`).
    pub fn mean_tuning(&self) -> f64 {
        self.tuning.mean
    }

    /// Access-time quantile (e.g. `0.95` for p95), in bytes.
    pub fn access_quantile(&self, q: f64) -> Ticks {
        self.access_hist.quantile(q)
    }

    /// Tuning-time quantile (e.g. `0.99` for p99), in bytes.
    pub fn tuning_quantile(&self, q: f64) -> Ticks {
        self.tuning_hist.quantile(q)
    }

    /// Mean corrupted reads per request (0 on a lossless channel).
    pub fn mean_retries(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.retries as f64 / self.requests as f64
        }
    }

    /// Fraction of requests the retry policy abandoned.
    pub fn abandonment_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.abandoned as f64 / self.requests as f64
        }
    }

    /// Mean stale restarts per request — the dynamic-broadcast
    /// degradation figure (0 on a frozen channel).
    pub fn restart_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.stale_restarts as f64 / self.requests as f64
        }
    }
}

/// The coordinator: runs rounds of requests through the event engine until
/// the accuracy controller is satisfied.
///
/// ```
/// use bda_core::{FlatScheme, Params, Scheme};
/// use bda_datagen::DatasetBuilder;
/// use bda_sim::{SimConfig, Simulator};
///
/// let dataset = DatasetBuilder::new(100, 1).build().unwrap();
/// let system = FlatScheme.build(&dataset, &Params::paper()).unwrap();
/// let report = Simulator::uniform(&system, &dataset, SimConfig::quick()).run();
/// assert!(report.converged);
/// assert_eq!(report.aborted, 0);
/// // Flat broadcast: expected access ≈ half the cycle, tuning = access.
/// let half = report.cycle_len as f64 / 2.0;
/// assert!((report.mean_access() / half - 1.0).abs() < 0.2);
/// ```
pub struct Simulator<'a> {
    system: &'a dyn DynSystem,
    generator: RequestGenerator,
    config: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Simulate `system` under the given workload and settings.
    pub fn new(system: &'a dyn DynSystem, workload: QueryWorkload, config: SimConfig) -> Self {
        let arrivals = Arrivals::new(config.mean_interarrival, config.seed);
        Simulator {
            system,
            generator: RequestGenerator::new(arrivals, workload),
            config,
        }
    }

    /// Convenience constructor: uniform popularity over the whole dataset,
    /// 100 % availability (the paper's §4 baseline).
    pub fn uniform(
        system: &'a dyn DynSystem,
        dataset: &bda_core::Dataset,
        config: SimConfig,
    ) -> Self {
        let workload = QueryWorkload::new(
            dataset,
            Vec::new(),
            1.0,
            Popularity::Uniform,
            config.seed ^ 0xABCD,
        );
        Simulator::new(system, workload, config)
    }

    /// Run until the accuracy targets are met (or `max_rounds` elapse).
    pub fn run(&mut self) -> SimReport {
        self.run_inner(false, None).0
    }

    /// [`run`](Simulator::run) with the observability layer switched on:
    /// also returns the run's [`MetricsHub`] — per-phase walk spans,
    /// access/tuning/retry-depth histograms, and (on the event-driven
    /// paths) engine gauges. The direct-walker fast path records spans via
    /// [`DynSystem::probe_recorded`], so phase attribution is identical
    /// across all three execution drivers.
    pub fn run_observed(&mut self) -> (SimReport, MetricsHub) {
        let (report, hub) = self.run_inner(true, None);
        (report, hub.expect("observed run always produces a hub"))
    }

    /// [`run_observed`](Simulator::run_observed) that additionally returns
    /// the exact request stream the run generated, in generation order.
    /// `bda-cli --timeline-out` replays a seed-sampled subset of this
    /// stream (walks are pure, so out-of-band replay is byte-faithful) to
    /// build per-request span timelines for the Perfetto trace.
    pub fn run_observed_logged(&mut self) -> (SimReport, MetricsHub, Vec<(Ticks, bda_core::Key)>) {
        let mut log = Vec::new();
        let (report, hub) = self.run_inner(true, Some(&mut log));
        (
            report,
            hub.expect("observed run always produces a hub"),
            log,
        )
    }

    fn run_inner(
        &mut self,
        observe: bool,
        mut log: Option<&mut Vec<(Ticks, bda_core::Key)>>,
    ) -> (SimReport, Option<MetricsHub>) {
        if self.config.event_driven {
            // `Some(0)` used to hang the steady loop (a zero-capacity cap
            // admits nothing, so rounds never complete); it now means "no
            // cap" and falls through to the batch testbed.
            if let Some(cap) = self.config.max_in_flight.filter(|&cap| cap > 0) {
                return self.run_steady(cap, observe, log);
            }
        }
        let controller = self.config.controller();
        let mut handler = ResultHandler::new();
        let mut engine = ShardedEngine::with_channel(
            self.system,
            self.config.shards.max(1),
            self.config.effective_channel(),
            self.config.retry,
        );
        if observe && self.config.event_driven {
            match self.config.window {
                Some(width) => engine.enable_metrics_windowed(WindowSpec::new(width)),
                None => engine.enable_metrics(),
            }
        }
        // Direct-walker observation accumulates into a local hub instead.
        let mut walker_hub: Option<Box<MetricsHub>> =
            (observe && !self.config.event_driven).then(|| {
                let mut hub = Box::<MetricsHub>::default();
                if let Some(width) = self.config.window {
                    hub.enable_windows(WindowSpec::new(width));
                }
                hub
            });
        let mut rounds = 0;
        let mut converged = false;
        while rounds < self.config.max_rounds {
            let batch = self.generator.round(self.config.round_requests);
            if let Some(log) = log.as_deref_mut() {
                log.extend_from_slice(&batch);
            }
            let completed = if self.config.event_driven {
                engine.run_batch(&batch)
            } else {
                batch
                    .iter()
                    .map(|&(arrival, key)| {
                        let outcome = if let Some(hub) = walker_hub.as_deref_mut() {
                            let (outcome, spans) = self.system.probe_recorded_channel(
                                key,
                                arrival,
                                self.config.effective_channel(),
                                self.config.retry,
                            );
                            hub.complete_at(
                                &Completion {
                                    end_tick: arrival + outcome.access,
                                    access: outcome.access,
                                    tuning: outcome.tuning,
                                    retries: outcome.retries,
                                    stale_restarts: outcome.stale_restarts,
                                    version_skews: outcome.version_skews,
                                    found: outcome.found,
                                    abandoned: outcome.abandoned,
                                },
                                Some(&spans),
                            );
                            outcome
                        } else {
                            self.system.probe_with_channel(
                                key,
                                arrival,
                                self.config.effective_channel(),
                                self.config.retry,
                            )
                        };
                        crate::engine::CompletedRequest {
                            arrival,
                            key,
                            outcome,
                        }
                    })
                    .collect()
            };
            handler.record_all(&completed);
            rounds += 1;
            if rounds >= self.config.min_rounds
                && controller.satisfied(&[handler.access(), handler.tuning()])
            {
                converged = true;
                break;
            }
        }
        let hub = engine.take_metrics().or_else(|| walker_hub.map(|b| *b));
        (
            self.report(&handler, rounds, converged, engine.stats()),
            hub,
        )
    }

    /// Steady-state rounds: a bounded client population streams through a
    /// persistent engine; round boundaries are counted in *completions*
    /// rather than materialized request batches.
    fn run_steady(
        &mut self,
        cap: usize,
        observe: bool,
        mut log: Option<&mut Vec<(Ticks, bda_core::Key)>>,
    ) -> (SimReport, Option<MetricsHub>) {
        let controller = self.config.controller();
        let mut handler = ResultHandler::new();
        let mut engine = Engine::with_channel(
            self.system,
            self.config.effective_channel(),
            self.config.retry,
        );
        if observe {
            match self.config.window {
                Some(width) => engine.enable_metrics_windowed(WindowSpec::new(width)),
                None => engine.enable_metrics(),
            }
        }
        let mut rounds = 0;
        let mut converged = false;
        let mut completed_in_round = 0usize;
        'sim: while rounds < self.config.max_rounds {
            while engine.occupied() < cap {
                let (t, key) = self.generator.next_request();
                if let Some(log) = log.as_deref_mut() {
                    log.push((t, key));
                }
                engine.admit(t, key, 0);
            }
            engine.advance(&mut |_tag, r| {
                handler.record(&r);
                completed_in_round += 1;
            });
            while completed_in_round >= self.config.round_requests {
                completed_in_round -= self.config.round_requests;
                rounds += 1;
                if rounds >= self.config.min_rounds
                    && controller.satisfied(&[handler.access(), handler.tuning()])
                {
                    converged = true;
                    break 'sim;
                }
            }
        }
        let hub = engine.take_metrics();
        (
            self.report(&handler, rounds, converged, engine.stats()),
            hub,
        )
    }

    fn report(
        &self,
        handler: &ResultHandler,
        rounds: usize,
        converged: bool,
        engine: EngineStats,
    ) -> SimReport {
        SimReport {
            scheme: self.system.scheme_name(),
            rounds,
            requests: handler.total(),
            access: handler.access().summary(self.config.confidence),
            tuning: handler.tuning().summary(self.config.confidence),
            found: handler.found(),
            not_found: handler.not_found(),
            false_drops: handler.false_drops(),
            aborted: handler.aborted(),
            retries: handler.retries(),
            abandoned: handler.abandoned(),
            stale_restarts: handler.stale_restarts(),
            version_skews: handler.version_skews(),
            converged,
            cycle_len: self.system.cycle_len(),
            access_hist: handler.access_histogram().clone(),
            tuning_hist: handler.tuning_histogram().clone(),
            retry_hist: handler.retry_histogram().clone(),
            engine,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{FlatScheme, Params, Scheme};
    use bda_datagen::DatasetBuilder;

    #[test]
    fn flat_simulation_converges_to_half_cycle() {
        let ds = DatasetBuilder::new(200, 9).build().unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let mut sim = Simulator::uniform(&sys, &ds, SimConfig::quick());
        let report = sim.run();
        assert!(report.converged, "quick settings must converge");
        assert_eq!(report.aborted, 0);
        assert_eq!(report.not_found, 0);
        let half_cycle = report.cycle_len as f64 / 2.0;
        let ratio = report.mean_access() / half_cycle;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "flat At ≈ Bt/2: ratio={ratio}"
        );
        // Flat broadcast never dozes.
        assert!((report.mean_tuning() - report.mean_access()).abs() < 1e-9);
    }

    #[test]
    fn tighter_accuracy_needs_more_requests() {
        let ds = DatasetBuilder::new(100, 11).build().unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let loose = Simulator::uniform(&sys, &ds, SimConfig::quick()).run();
        let mut tight_cfg = SimConfig::quick();
        tight_cfg.accuracy = 0.01;
        let tight = Simulator::uniform(&sys, &ds, tight_cfg).run();
        assert!(tight.requests > loose.requests);
        assert!(tight.access.accuracy() <= 0.01 + 1e-12);
    }

    #[test]
    fn fast_and_event_driven_agree_exactly() {
        let ds = DatasetBuilder::new(150, 21).build().unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let mut cfg = SimConfig::quick();
        // Pin the request count so both runs see identical streams.
        cfg.min_rounds = 3;
        cfg.max_rounds = 3;
        let a = Simulator::uniform(&sys, &ds, cfg).run();
        cfg.event_driven = false;
        let b = Simulator::uniform(&sys, &ds, cfg).run();
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.access, b.access);
        assert_eq!(a.tuning, b.tuning);
        assert_eq!(a.found, b.found);
    }

    #[test]
    fn steady_state_mode_matches_batch_statistics() {
        let ds = DatasetBuilder::new(120, 17).build().unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let mut cfg = SimConfig::quick();
        // Pin the completion count so both runs measure 3 × 200 requests.
        cfg.min_rounds = 3;
        cfg.max_rounds = 3;
        let batch = Simulator::uniform(&sys, &ds, cfg).run();
        cfg.max_in_flight = Some(32);
        let steady = Simulator::uniform(&sys, &ds, cfg).run();
        assert_eq!(steady.requests, batch.requests);
        assert_eq!(steady.aborted, 0);
        assert!(steady.engine.peak_in_flight <= 32);
        assert!(steady.engine.events > 0);
        // Completion order may differ from arrival order, so the streams
        // agree statistically rather than bit-for-bit.
        let ratio = steady.mean_access() / batch.mean_access();
        assert!((0.95..=1.05).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn batch_mode_reports_engine_stats() {
        let ds = DatasetBuilder::new(50, 23).build().unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let mut cfg = SimConfig::quick();
        cfg.min_rounds = 2;
        cfg.max_rounds = 2;
        let report = Simulator::uniform(&sys, &ds, cfg).run();
        assert_eq!(report.engine.completed, report.requests);
        assert!(report.engine.peak_in_flight >= 1);
        assert!(report.engine.events >= report.requests);
    }

    #[test]
    fn lossy_testbed_reports_degradation_and_stays_truthful() {
        let ds = DatasetBuilder::new(150, 31).build().unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let mut cfg = SimConfig::quick();
        cfg.min_rounds = 2;
        cfg.max_rounds = 2;
        cfg.errors = ErrorModel::new(0.10, 7);
        let lossy = Simulator::uniform(&sys, &ds, cfg).run();
        assert_eq!(lossy.aborted, 0);
        assert_eq!(lossy.abandoned, 0, "unbounded retries never abandon");
        assert_eq!(lossy.not_found, 0, "every broadcast key is found");
        assert!(lossy.retries > 0, "10% loss must corrupt transmissions");
        assert_eq!(lossy.retries, lossy.engine.corrupt_reads);
        assert!(lossy.mean_retries() > 0.0);
        assert_eq!(lossy.retry_hist.len(), lossy.requests);

        // Degradation: lossy access time exceeds the lossless baseline.
        cfg.errors = ErrorModel::NONE;
        let clean = Simulator::uniform(&sys, &ds, cfg).run();
        assert!(lossy.mean_access() > clean.mean_access());
        assert_eq!(clean.retries, 0);
        assert_eq!(clean.retry_hist.quantile(1.0), 0);
    }

    #[test]
    fn bounded_retry_policy_abandons_rather_than_lies() {
        let ds = DatasetBuilder::new(100, 37).build().unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let mut cfg = SimConfig::quick();
        cfg.min_rounds = 2;
        cfg.max_rounds = 2;
        cfg.errors = ErrorModel::new(0.25, 13);
        cfg.retry = RetryPolicy::bounded(1);
        let report = Simulator::uniform(&sys, &ds, cfg).run();
        assert_eq!(report.aborted, 0);
        assert!(report.abandoned > 0, "25% loss with 1 retry must give up");
        // Abandoned requests are the only not-found ones: the workload
        // queries broadcast keys exclusively, and an abandoned query is
        // truthfully not-found, never wrongly answered.
        assert_eq!(report.not_found, report.abandoned);
        assert!(report.abandonment_rate() > 0.0);
    }

    #[test]
    fn observed_run_matches_plain_run_on_every_driver() {
        let ds = DatasetBuilder::new(120, 41).build().unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let mut cfg = SimConfig::quick();
        cfg.min_rounds = 2;
        cfg.max_rounds = 2;
        cfg.errors = ErrorModel::new(0.05, 3);
        for (event_driven, cap) in [(true, None), (true, Some(24)), (false, None)] {
            cfg.event_driven = event_driven;
            cfg.max_in_flight = cap;
            let plain = Simulator::uniform(&sys, &ds, cfg).run();
            let (obs, hub) = Simulator::uniform(&sys, &ds, cfg).run_observed();
            assert_eq!(plain.requests, obs.requests);
            assert_eq!(plain.access, obs.access, "observation must not perturb");
            assert_eq!(plain.tuning, obs.tuning);
            assert_eq!(plain.retries, obs.retries);
            // Spans telescope: per-phase ticks sum to the measured totals.
            assert_eq!(hub.completed, obs.requests);
            assert_eq!(hub.access.sum(), obs.access_hist.sum());
            assert_eq!(hub.tuning.sum(), obs.tuning_hist.sum());
            assert_eq!(u128::from(hub.spans.total_access()), hub.access.sum());
            assert_eq!(u128::from(hub.spans.total_tuning()), hub.tuning.sum());
            // Engine gauges exist exactly on the event-driven drivers.
            let sampled = hub.gauges.get(bda_obs::Gauge::InFlight).samples > 0;
            assert_eq!(sampled, event_driven, "event_driven={event_driven}");
        }
    }

    #[test]
    fn sharded_testbed_reports_are_bit_identical() {
        let ds = DatasetBuilder::new(140, 43).build().unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let mut cfg = SimConfig::quick();
        cfg.min_rounds = 2;
        cfg.max_rounds = 2;
        cfg.errors = ErrorModel::new(0.10, 5);
        let single = Simulator::uniform(&sys, &ds, cfg).run();
        for shards in [0, 1, 3, 4] {
            cfg.shards = shards;
            let sharded = Simulator::uniform(&sys, &ds, cfg).run();
            assert_eq!(single.requests, sharded.requests, "shards={shards}");
            assert_eq!(single.access, sharded.access, "shards={shards}");
            assert_eq!(single.tuning, sharded.tuning, "shards={shards}");
            assert_eq!(single.retries, sharded.retries, "shards={shards}");
            assert_eq!(single.access_hist, sharded.access_hist, "shards={shards}");
            assert_eq!(single.retry_hist, sharded.retry_hist, "shards={shards}");
            assert_eq!(
                single.engine.outcome_counters(),
                sharded.engine.outcome_counters(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn zero_in_flight_cap_means_uncapped_batch_mode() {
        let ds = DatasetBuilder::new(80, 47).build().unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let mut cfg = SimConfig::quick();
        cfg.min_rounds = 2;
        cfg.max_rounds = 2;
        let batch = Simulator::uniform(&sys, &ds, cfg).run();
        // Regression: `Some(0)` used to spin forever in the steady loop.
        cfg.max_in_flight = Some(0);
        let zero = Simulator::uniform(&sys, &ds, cfg).run();
        assert_eq!(batch.requests, zero.requests);
        assert_eq!(batch.access, zero.access);
        assert_eq!(batch.tuning, zero.tuning);
    }

    #[test]
    fn availability_mix_is_reported() {
        let (ds, pool) = DatasetBuilder::new(100, 13)
            .build_with_absent_pool(100)
            .unwrap();
        let sys = FlatScheme.build(&ds, &Params::paper()).unwrap();
        let workload = QueryWorkload::new(&ds, pool, 0.5, Popularity::Uniform, 7);
        let mut sim = Simulator::new(&sys, workload, SimConfig::quick());
        let report = sim.run();
        let found_rate = report.found as f64 / report.requests as f64;
        assert!((found_rate - 0.5).abs() < 0.1, "found_rate={found_rate}");
    }
}
