//! Streaming statistics and the Student-t machinery behind the paper's
//! confidence/accuracy termination rule.

/// Welford's online mean/variance accumulator.
///
/// Numerically stable for the long request streams the testbed produces
/// (hundreds of thousands of samples whose magnitudes are in the millions
/// of bytes).
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance `σ² = Σ(x−x̄)²/(n−1)` (0 if `n < 2`).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Freeze into a [`Summary`].
    pub fn summary(&self, confidence: f64) -> Summary {
        let half = confidence_half_width(self.n, self.std_dev(), confidence);
        Summary {
            n: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            ci_half_width: half,
        }
    }
}

/// A frozen statistical summary of one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Confidence-interval half-width `H = t(α/2; n−1) · σ/√n`.
    pub ci_half_width: f64,
}

impl Summary {
    /// The paper's *confidence accuracy* `H / Ȳ` (∞ while the mean is 0).
    pub fn accuracy(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.ci_half_width / self.mean
        }
    }
}

/// `H = t(α/2; n−1) · σ / √n` — the half-width of the paper's footnote-1
/// confidence interval.
pub fn confidence_half_width(n: u64, std_dev: f64, confidence: f64) -> f64 {
    if n < 2 {
        return f64::INFINITY;
    }
    let alpha = 1.0 - confidence;
    let t = student_t_quantile(1.0 - alpha / 2.0, (n - 1) as f64);
    t * std_dev / (n as f64).sqrt()
}

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |ε| < 1.15e-9).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Quantile of Student's t distribution with `df` degrees of freedom, via
/// the Cornish–Fisher expansion around the normal quantile.
///
/// The testbed only consults this for `df ≥ round_requests − 1` (hundreds),
/// where the expansion is accurate to ~1e-6; for small `df` it is still
/// good to ~1e-3 above `df ≈ 10`, which the tests verify against table
/// values.
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    assert!(df >= 1.0, "degrees of freedom must be ≥ 1");
    let z = normal_quantile(p);
    if df > 1e7 {
        return z;
    }
    let z3 = z.powi(3);
    let z5 = z.powi(5);
    let z7 = z.powi(7);
    z + (z3 + z) / (4.0 * df)
        + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * df * df)
        + (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * df * df * df)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_computation() {
        let xs = [2.0f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((w.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_singleton() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.summary(0.99).ci_half_width.is_infinite());
    }

    #[test]
    fn normal_quantile_table_values() {
        let cases = [
            (0.5, 0.0),
            (0.975, 1.959964),
            (0.995, 2.575829),
            (0.9999, 3.719016),
            (0.025, -1.959964),
        ];
        for (p, want) in cases {
            assert!(
                (normal_quantile(p) - want).abs() < 1e-5,
                "p={p}: got {} want {want}",
                normal_quantile(p)
            );
        }
    }

    #[test]
    fn t_quantile_table_values() {
        // Standard t-table (two-sided 95 % → p = 0.975; 99 % → 0.995).
        let cases = [
            (0.975, 10.0, 2.228, 5e-3),
            (0.975, 30.0, 2.042, 1e-3),
            (0.975, 100.0, 1.984, 1e-3),
            (0.995, 100.0, 2.626, 2e-3),
            (0.995, 499.0, 2.586, 2e-3),
        ];
        for (p, df, want, tol) in cases {
            let got = student_t_quantile(p, df);
            assert!(
                (got - want).abs() < tol,
                "p={p} df={df}: got {got} want {want}"
            );
        }
    }

    #[test]
    fn t_quantile_converges_to_normal() {
        let z = normal_quantile(0.995);
        let t = student_t_quantile(0.995, 1e8);
        assert!((z - t).abs() < 1e-9);
    }

    #[test]
    fn half_width_shrinks_with_samples() {
        let h1 = confidence_half_width(100, 10.0, 0.99);
        let h2 = confidence_half_width(10_000, 10.0, 0.99);
        assert!(h2 < h1 / 5.0);
        assert!(confidence_half_width(1, 10.0, 0.99).is_infinite());
    }

    #[test]
    fn summary_accuracy_is_relative_half_width() {
        let mut w = Welford::new();
        for i in 0..1000 {
            w.push(100.0 + (i % 7) as f64);
        }
        let s = w.summary(0.99);
        assert!((s.accuracy() - s.ci_half_width / s.mean).abs() < 1e-15);
        assert!(s.accuracy() < 0.01, "tight data converges quickly");
    }
}
