//! Per-request span timelines and Perfetto trace assembly.
//!
//! The windowed [`bda_obs::TimeSeries`] answers "what was the engine
//! doing around tick T?" in aggregate; this module answers it for
//! *individual requests*. [`replay_spans`] re-runs one request through a
//! span-instrumented slot, bucket by bucket, and converts the recorded
//! per-phase deltas into an ordered list of [`SpanSegment`]s that tile
//! the walk's access interval `[arrival, arrival + access)` exactly.
//! Replay is legitimate because walks are pure: a request's walk depends
//! only on `(key, arrival, channel, policy)` and the immutable broadcast
//! program — never on what other clients do — so the replayed timeline
//! is byte-identical to what the original in-engine walk did (the
//! `timeline_equiv` suite pins segment sums against engine outcomes).
//!
//! [`perfetto_trace`] assembles the full `bda-obs/trace/v1` document:
//! per-shard counter lanes from windowed time series plus span timelines
//! for a deterministically seed-sampled subset of requests (see
//! [`bda_obs::sample_indices`] — sampling is a pure function of
//! `(seed, request index)`, so shard placement can never change which
//! requests are traced). All timestamps are ticks; the document is a
//! deterministic artifact of the simulation.

use bda_core::{AccessOutcome, ChannelModel, DynSystem, Key, RetryPolicy, Ticks, WalkStep};
use bda_obs::{sample_indices, Phase, TimeSeries, TraceBuilder};

/// One contiguous run of a walk attributed to a single [`Phase`]:
/// `[start, end)` in absolute ticks, with `end - start == access`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanSegment {
    /// The phase this stretch of the walk belongs to.
    pub phase: Phase,
    /// Absolute tick the segment begins (inclusive).
    pub start: Ticks,
    /// Absolute tick the segment ends (exclusive); `start + access`.
    pub end: Ticks,
    /// Access ticks spent in the segment (`end - start`).
    pub access: Ticks,
    /// Tuning ticks spent in the segment (`<= access`; 0 while dozing).
    pub tuning: Ticks,
}

/// Re-run one request through a span-instrumented slow-path walk and
/// return its outcome together with the ordered phase segments tiling
/// `[arrival, arrival + outcome.access)`.
///
/// Adjacent deltas in the same phase coalesce, so a long scan is one
/// segment, not one per bucket. Fast-forward is disabled for the replay —
/// it never changes outcomes or span totals, but stepping bucket by
/// bucket yields the finest segment boundaries the recorder can resolve.
pub fn replay_spans(
    system: &dyn DynSystem,
    key: Key,
    arrival: Ticks,
    channel: ChannelModel,
    policy: RetryPolicy,
) -> (AccessOutcome, Vec<SpanSegment>) {
    let mut slot = system.make_slot_channel_observed(channel, policy);
    slot.set_fast_forward(false);
    slot.start(key, arrival);
    let mut prev = slot.spans().copied().unwrap_or_default();
    let mut cursor = arrival;
    let mut segments: Vec<SpanSegment> = Vec::new();
    loop {
        let step = slot.step();
        let cur = slot.spans().copied().unwrap_or_default();
        for (phase, t) in cur.iter() {
            let before = prev.get(phase);
            let access = t.access - before.access;
            let tuning = t.tuning - before.tuning;
            if access == 0 && tuning == 0 {
                continue;
            }
            match segments.last_mut() {
                Some(last) if last.phase == phase && last.end == cursor => {
                    last.end += access;
                    last.access += access;
                    last.tuning += tuning;
                }
                _ => segments.push(SpanSegment {
                    phase,
                    start: cursor,
                    end: cursor + access,
                    access,
                    tuning,
                }),
            }
            cursor += access;
        }
        prev = cur;
        if let WalkStep::Done(outcome) = step {
            debug_assert_eq!(
                cursor,
                arrival + outcome.access,
                "segments must tile the walk exactly"
            );
            return (outcome, segments);
        }
    }
}

/// Assemble one `bda-obs/trace/v1` document for one scheme: per-shard
/// counter lanes from `shard_series` (one windowed [`TimeSeries`] per
/// shard, in shard order) plus replayed span timelines for `sample_k`
/// requests chosen by [`sample_indices`]`(sample_seed, …)`. Each sampled
/// request gets its own thread lane (tids after the shard lanes): an
/// enclosing `request` span over the whole walk, with one nested span
/// per phase segment.
#[allow(clippy::too_many_arguments)]
pub fn perfetto_trace(
    scheme: &str,
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    channel: ChannelModel,
    policy: RetryPolicy,
    shard_series: &[&TimeSeries],
    sample_seed: u64,
    sample_k: usize,
) -> String {
    let mut trace = TraceBuilder::new();
    append_scheme_timeline(
        &mut trace,
        1,
        scheme,
        system,
        requests,
        channel,
        policy,
        shard_series,
        sample_seed,
        sample_k,
    );
    trace.finish()
}

/// The composable core of [`perfetto_trace`]: append one scheme's
/// process lane (counter lanes + sampled request timelines) under `pid`.
/// `bda-cli compare --timeline-out` uses this to put every scheme in one
/// document, one process per scheme.
#[allow(clippy::too_many_arguments)]
pub fn append_scheme_timeline(
    trace: &mut TraceBuilder,
    pid: u64,
    scheme: &str,
    system: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    channel: ChannelModel,
    policy: RetryPolicy,
    shard_series: &[&TimeSeries],
    sample_seed: u64,
    sample_k: usize,
) {
    trace.process_name(pid, scheme);
    for (s, series) in shard_series.iter().enumerate() {
        trace.counter_lane(pid, s as u64, &format!("shard {s}"), series);
    }
    let first_request_tid = shard_series.len() as u64;
    let sampled = sample_indices(sample_seed, requests.len() as u64, sample_k);
    for (rank, &index) in sampled.iter().enumerate() {
        let (arrival, key) = requests[index as usize];
        let (outcome, segments) = replay_spans(system, key, arrival, channel, policy);
        let tid = first_request_tid + rank as u64;
        trace.thread_name(pid, tid, &format!("request {index} (key {})", key.0));
        trace.span(
            pid,
            tid,
            "request",
            arrival,
            outcome.access,
            &[
                ("index", index),
                ("key", key.0),
                ("tuning", outcome.tuning),
                ("retries", u64::from(outcome.retries)),
                ("found", u64::from(outcome.found)),
            ],
        );
        for seg in segments {
            trace.span(
                pid,
                tid,
                seg.phase.name(),
                seg.start,
                seg.access,
                &[("tuning", seg.tuning)],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bda_core::{Dataset, ErrorModel, FlatScheme, Params, Record, Scheme};
    use bda_obs::validate_trace;

    fn system() -> impl DynSystem {
        let ds = Dataset::new((0..32).map(|i| Record::keyed(i * 2)).collect()).unwrap();
        FlatScheme.build(&ds, &Params::paper()).unwrap()
    }

    #[test]
    fn segments_tile_the_walk_and_telescope_to_the_outcome() {
        let sys = system();
        for (t, k) in [(0u64, 0u64), (777, 30), (12_345, 62)] {
            let (outcome, segments) =
                replay_spans(&sys, Key(k), t, ChannelModel::NONE, RetryPolicy::UNBOUNDED);
            assert_eq!(outcome, sys.probe(Key(k), t), "replay must not perturb");
            let access: u64 = segments.iter().map(|s| s.access).sum();
            let tuning: u64 = segments.iter().map(|s| s.tuning).sum();
            assert_eq!(access, outcome.access);
            assert_eq!(tuning, outcome.tuning);
            // Contiguous tiling from arrival to completion.
            let mut cursor = t;
            for seg in &segments {
                assert_eq!(seg.start, cursor, "gap before {seg:?}");
                assert_eq!(seg.end - seg.start, seg.access);
                assert!(seg.tuning <= seg.access);
                cursor = seg.end;
            }
            assert_eq!(cursor, t + outcome.access);
        }
    }

    #[test]
    fn lossy_replay_matches_the_direct_walker() {
        let sys = system();
        let channel = ChannelModel::from(ErrorModel::new(0.2, 0xFA11));
        let policy = RetryPolicy::bounded(2);
        for i in 0..20u64 {
            let (t, k) = (i * 613, Key((i % 32) * 2));
            let (outcome, segments) = replay_spans(&sys, k, t, channel, policy);
            assert_eq!(outcome, sys.probe_with_channel(k, t, channel, policy));
            let access: u64 = segments.iter().map(|s| s.access).sum();
            assert_eq!(access, outcome.access);
        }
    }

    #[test]
    fn perfetto_document_validates_and_is_deterministic() {
        let sys = system();
        let requests: Vec<(Ticks, Key)> =
            (0..50u64).map(|i| (i * 137, Key((i % 32) * 2))).collect();
        let (_, hub) = crate::engine::run_requests_channel_windowed(
            &sys,
            &requests,
            ChannelModel::NONE,
            RetryPolicy::UNBOUNDED,
            64,
        );
        let series = hub.windows.expect("windowed run carries a series");
        let build = || {
            perfetto_trace(
                "flat",
                &sys,
                &requests,
                ChannelModel::NONE,
                RetryPolicy::UNBOUNDED,
                &[&series],
                0xBEEF,
                4,
            )
        };
        let doc = build();
        assert!(validate_trace(&doc).unwrap() > 0);
        assert_eq!(doc, build(), "trace must be byte-identical across runs");
    }
}
