//! Seeded, deterministic server-side update streams.
//!
//! A dynamic broadcast server applies a batch of insert/delete/update
//! operations at each cycle boundary and rebuilds its program (see
//! [`crate::server::VersionedServer`]). The batches come from an
//! [`UpdateStream`]: a pure function of the [`UpdateSpec`] seed and the
//! cycle number, so every driver (slab engine, reference oracle, direct
//! walker) observes the *identical* sequence of programs — the property
//! the dynamic differential suite pins.

use bda_core::{Key, Record};

/// Parameters of a deterministic update stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateSpec {
    /// Fraction of the current dataset touched per cycle (0.05 = 5 % of
    /// records inserted/deleted/updated each cycle). A rate of 0 produces
    /// only empty batches: the program never changes and dynamic mode is
    /// bit-identical to the frozen channel.
    pub rate: f64,
    /// Seed of the operation stream.
    pub seed: u64,
    /// Number of cycle boundaries at which batches are applied; after
    /// that, the program is frozen forever (the simulation horizon).
    pub horizon_cycles: u32,
}

impl UpdateSpec {
    /// A frozen stream: rate 0, no cycles — dynamic mode degenerates to
    /// the plain broadcast.
    pub const FROZEN: UpdateSpec = UpdateSpec {
        rate: 0.0,
        seed: 0,
        horizon_cycles: 0,
    };

    /// An update stream at `rate` with the default horizon of 64 cycles.
    pub fn rate(rate: f64, seed: u64) -> Self {
        UpdateSpec {
            rate,
            seed,
            horizon_cycles: 64,
        }
    }
}

/// One server-side mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Add a new record (its key is chosen to be absent).
    Insert(Record),
    /// Remove the record with this key.
    Delete(Key),
    /// Update the record's content in place (attribute change; the cycle
    /// geometry is unaffected but the program version still advances,
    /// because clients must not serve the stale content).
    Touch(Key),
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic per-cycle generator of [`UpdateOp`] batches.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    spec: UpdateSpec,
    state: u64,
    cycles_emitted: u32,
}

impl UpdateStream {
    /// A stream over `spec`.
    pub fn new(spec: UpdateSpec) -> Self {
        UpdateStream {
            spec,
            state: spec.seed ^ 0xD1B5_4A32_D192_ED03,
            cycles_emitted: 0,
        }
    }

    /// The batch for the next cycle boundary, computed against the current
    /// (sorted) record set. Returns an empty batch past the horizon or at
    /// rate 0. Deletes never empty the dataset; inserts pick gap keys next
    /// to existing keys, so key magnitudes stay in the dataset's range.
    pub fn next_batch(&mut self, records: &[Record]) -> Vec<UpdateOp> {
        if self.cycles_emitted >= self.spec.horizon_cycles || self.spec.rate <= 0.0 {
            return Vec::new();
        }
        self.cycles_emitted += 1;
        let n_ops = ((self.spec.rate * records.len() as f64).round() as usize).min(records.len());
        let mut ops = Vec::with_capacity(n_ops);
        // Track mutations within the batch so ops stay consistent with the
        // record set they will be applied to.
        let mut keys: Vec<u64> = records.iter().map(|r| r.key.value()).collect();
        for _ in 0..n_ops {
            let r = splitmix(&mut self.state);
            let pick = (splitmix(&mut self.state) as usize) % keys.len();
            match r % 3 {
                0 => {
                    // Insert: first gap key after a random existing key
                    // (bounded scan; skip the op if the neighbourhood is
                    // dense).
                    let base = keys[pick];
                    if let Some(k) = (1..=64u64)
                        .map(|d| base.wrapping_add(d))
                        .find(|k| keys.binary_search(k).is_err())
                    {
                        let idx = keys.binary_search(&k).unwrap_err();
                        keys.insert(idx, k);
                        ops.push(UpdateOp::Insert(Record::new(Key(k), vec![k, r])));
                    }
                }
                1 => {
                    // Delete: never empty the dataset.
                    if keys.len() > 1 {
                        let k = keys.remove(pick);
                        ops.push(UpdateOp::Delete(Key(k)));
                    }
                }
                _ => ops.push(UpdateOp::Touch(Key(keys[pick]))),
            }
        }
        ops
    }

    /// Apply a batch to a sorted record vector, preserving sort order.
    /// Returns the number of ops that actually changed something.
    pub fn apply(records: &mut Vec<Record>, ops: &[UpdateOp]) -> usize {
        let mut changed = 0;
        for op in ops {
            match op {
                UpdateOp::Insert(rec) => {
                    if let Err(idx) = records.binary_search_by_key(&rec.key, |r| r.key) {
                        records.insert(idx, rec.clone());
                        changed += 1;
                    }
                }
                UpdateOp::Delete(key) => {
                    if let Ok(idx) = records.binary_search_by_key(key, |r| r.key) {
                        if records.len() > 1 {
                            records.remove(idx);
                            changed += 1;
                        }
                    }
                }
                UpdateOp::Touch(key) => {
                    if let Ok(idx) = records.binary_search_by_key(key, |r| r.key) {
                        if let Some(a) = records[idx].attrs.first_mut() {
                            *a = a.wrapping_add(1);
                        }
                        changed += 1;
                    }
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(keys: &[u64]) -> Vec<Record> {
        keys.iter().map(|&k| Record::keyed(k)).collect()
    }

    #[test]
    fn streams_are_deterministic() {
        let spec = UpdateSpec::rate(0.25, 42);
        let mut a = UpdateStream::new(spec);
        let mut b = UpdateStream::new(spec);
        let mut ra = records(&[0, 10, 20, 30, 40, 50, 60, 70]);
        let mut rb = ra.clone();
        for _ in 0..16 {
            let ba = a.next_batch(&ra);
            let bb = b.next_batch(&rb);
            assert_eq!(ba, bb);
            UpdateStream::apply(&mut ra, &ba);
            UpdateStream::apply(&mut rb, &bb);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn zero_rate_and_horizon_produce_empty_batches() {
        let mut s = UpdateStream::new(UpdateSpec::FROZEN);
        assert!(s.next_batch(&records(&[1, 2, 3])).is_empty());
        let mut s = UpdateStream::new(UpdateSpec {
            rate: 0.0,
            seed: 9,
            horizon_cycles: 100,
        });
        assert!(s.next_batch(&records(&[1, 2, 3])).is_empty());
        // Past the horizon the stream goes quiet.
        let mut s = UpdateStream::new(UpdateSpec {
            rate: 1.0,
            seed: 9,
            horizon_cycles: 1,
        });
        let r = records(&[0, 100, 200, 300]);
        assert!(!s.next_batch(&r).is_empty());
        assert!(s.next_batch(&r).is_empty());
    }

    #[test]
    fn applied_batches_keep_records_sorted_unique_nonempty() {
        let mut s = UpdateStream::new(UpdateSpec::rate(0.5, 7));
        let mut r = records(&[0, 10, 20, 30]);
        for _ in 0..64 {
            let batch = s.next_batch(&r);
            UpdateStream::apply(&mut r, &batch);
            assert!(!r.is_empty());
            for w in r.windows(2) {
                assert!(w[0].key < w[1].key, "sorted and unique");
            }
        }
    }

    #[test]
    fn deletes_never_empty_a_singleton() {
        let mut s = UpdateStream::new(UpdateSpec::rate(1.0, 3));
        let mut r = records(&[5]);
        for _ in 0..32 {
            let batch = s.next_batch(&r);
            UpdateStream::apply(&mut r, &batch);
            assert!(!r.is_empty());
        }
    }
}
