//! Bursty-channel differential suite: under Gilbert–Elliott burst loss,
//! scheduled carrier outages, and both at once, every execution strategy
//! must produce **identical** per-request outcomes.
//!
//! This is the chain-state analogue of `engine_lossy_equiv`: the
//! [`bda_core::BurstModel`] resolves its fading state by an exact
//! skip-ahead that is a pure function of (bucket start instant, seed), and
//! the [`bda_core::OutageSchedule`] is a pure function of the frame index,
//! so the slab engine (fast-forward on and off), the naive reference heap,
//! the sharded engine at every shard count, and an isolated direct walker
//! all see the same dead air for the same request. Any divergence is an
//! engine scheduling bug, not noise.

use bda_core::{
    BurstModel, ChannelModel, DynSystem, ErrorModel, Key, OutageSchedule, Params, RetryPolicy,
    Scheme, Ticks,
};
use bda_datagen::DatasetBuilder;
use bda_sim::engine::reference::run_requests_reference_channel;
use bda_sim::{
    run_requests_sharded_channel, run_requests_with_faults, CompletedRequest, Engine, UpdateSpec,
    VersionedServer,
};

/// Every scheme family in the repo, including the composite hybrid.
fn all_systems(ds: &bda_core::Dataset, p: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(bda_core::FlatScheme.build(ds, p).unwrap()),
        Box::new(bda_btree::OneMScheme::new().build(ds, p).unwrap()),
        Box::new(bda_btree::DistributedScheme::new().build(ds, p).unwrap()),
        Box::new(bda_hash::HashScheme::new().build(ds, p).unwrap()),
        Box::new(
            bda_signature::SimpleSignatureScheme::new()
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::IntegratedSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::MultiLevelSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(bda_hybrid::HybridScheme::new().build(ds, p).unwrap()),
    ]
}

/// A deterministic request mix: unsorted arrivals with collisions, present
/// and absent keys interleaved.
fn request_mix(ds: &bda_core::Dataset, pool: &[Key], n: usize) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..n)
        .map(|i| {
            let t = ((i * 6151) % 9000) as Ticks;
            let key = if i % 6 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 37) % keys.len()]
            };
            (t, key)
        })
        .collect()
}

/// The shard counts the suite sweeps: the acceptance grid plus however
/// many cores this host actually has.
fn shard_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut counts = vec![1, 2, 3, 7, cores];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// The channel grid: pure burst loss, burst + outages, i.i.d. + outages.
fn channel_grid() -> Vec<(&'static str, ChannelModel)> {
    let burst = BurstModel::new(0.05, 0.25, 0.0, 1.0, 0xFA57);
    let outages = OutageSchedule::new(2_500, 250, 0x0A7);
    vec![
        ("burst", ChannelModel::burst(burst)),
        (
            "burst+outage",
            ChannelModel::burst(burst).with_outages(outages),
        ),
        (
            "iid+outage",
            ChannelModel::iid(ErrorModel::new(0.10, 7)).with_outages(outages),
        ),
    ]
}

/// Slab engine (fast-forward on and off) ≡ reference heap ≡ sharded engine
/// at shard counts {1, 2, 3, 7, #cores} ≡ direct walker, request by
/// request, for every scheme over every channel in the grid.
#[test]
fn all_drivers_agree_under_burst_and_outages() {
    let (ds, pool) = DatasetBuilder::new(60, 0xB1257)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let requests = request_mix(&ds, &pool, 72);
    for (label, channel) in channel_grid() {
        // Exponential backoff with seeded jitter exercises the
        // resynchronization path; the bound keeps dead-air walks finite.
        let policy = RetryPolicy::bounded(24)
            .with_backoff_cap(8)
            .with_jitter(0x1EE7);
        for sys in all_systems(&ds, &params) {
            let name = sys.scheme_name();
            let mut fast = Engine::with_channel(sys.as_ref(), channel, policy);
            fast.set_fast_forward(true);
            let fast = fast.run_batch(&requests);
            let mut slow = Engine::with_channel(sys.as_ref(), channel, policy);
            slow.set_fast_forward(false);
            let slow = slow.run_batch(&requests);
            assert_eq!(
                fast, slow,
                "{name}/{label}: fast-forward changed an outcome"
            );
            let oracle = run_requests_reference_channel(sys.as_ref(), &requests, channel, policy);
            assert_eq!(fast, oracle, "{name}/{label}: slab ≠ reference oracle");
            for shards in shard_counts() {
                let sharded =
                    run_requests_sharded_channel(sys.as_ref(), &requests, shards, channel, policy);
                assert_eq!(fast, sharded, "{name}/{label}: {shards} shards diverged");
            }
            for (i, r) in fast.iter().enumerate() {
                let direct = sys.probe_with_channel(r.key, r.arrival, channel, policy);
                assert_eq!(
                    r.outcome, direct,
                    "{name}/{label}: engine vs walker diverged at req {i}"
                );
                // Truthfulness: a wrong answer is never reported.
                assert!(!r.outcome.aborted, "{name}/{label}: aborted at req {i}");
            }
        }
    }
}

/// A Gilbert–Elliott chain whose two states lose at the same rate *is*
/// the i.i.d. channel: with `loss_good == loss_bad` and the same seed the
/// per-bucket draws are reused bit for bit, so the whole run — outcomes,
/// access, tuning, retries — matches `ErrorModel` exactly. This is the
/// degenerate-configs-are-free guarantee at the engine level.
#[test]
fn degenerate_burst_is_bit_identical_to_iid() {
    let (ds, pool) = DatasetBuilder::new(60, 0xB1257)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let requests = request_mix(&ds, &pool, 72);
    let seed = 0xFA57;
    let errors = ErrorModel::new(0.15, seed);
    let degenerate = ChannelModel::burst(BurstModel::new(0.3, 0.2, 0.15, 0.15, seed));
    for policy in [RetryPolicy::UNBOUNDED, RetryPolicy::bounded(2)] {
        for sys in all_systems(&ds, &params) {
            let iid = run_requests_with_faults(sys.as_ref(), &requests, errors, policy);
            let burst = bda_sim::run_requests_channel(sys.as_ref(), &requests, degenerate, policy);
            assert_eq!(
                iid,
                burst,
                "{}: degenerate burst drifted from i.i.d.",
                sys.scheme_name()
            );
        }
    }
}

/// The dynamic-broadcast leg: a churning versioned program (20 % of
/// records touched per cycle) under burst loss plus outages still yields
/// identical outcomes — including skew and stale-restart counters — on
/// the slab engine, the reference heap, every shard count, and the direct
/// versioned walker.
#[test]
fn churning_program_agrees_across_drivers_under_burst() {
    let (ds, pool) = DatasetBuilder::new(48, 0xB1258)
        .build_with_absent_pool(8)
        .unwrap();
    let params = Params::paper();
    let spec = UpdateSpec {
        rate: 0.20,
        seed: 0xABC7,
        horizon_cycles: 16,
    };
    let requests = request_mix(&ds, &pool, 48);
    let channel = ChannelModel::burst(BurstModel::new(0.05, 0.25, 0.0, 1.0, 0x717))
        .with_outages(OutageSchedule::new(2_000, 200, 0x0A7));
    let policy = RetryPolicy::bounded(24)
        .with_backoff_cap(8)
        .with_jitter(0x1EE7);
    for scheme_run in [
        |ds: &bda_core::Dataset, p: &Params, s| {
            VersionedServer::build(&bda_core::FlatScheme, ds, p, s)
                .map(|v| Box::new(v) as Box<dyn DynSystem>)
        },
        |ds: &bda_core::Dataset, p: &Params, s| {
            VersionedServer::build(&bda_btree::DistributedScheme::new(), ds, p, s)
                .map(|v| Box::new(v) as Box<dyn DynSystem>)
        },
        |ds: &bda_core::Dataset, p: &Params, s| {
            VersionedServer::build(&bda_signature::SimpleSignatureScheme::new(), ds, p, s)
                .map(|v| Box::new(v) as Box<dyn DynSystem>)
        },
    ] {
        let server = scheme_run(&ds, &params, spec).unwrap();
        let slab = bda_sim::run_requests_channel(server.as_ref(), &requests, channel, policy);
        let oracle = run_requests_reference_channel(server.as_ref(), &requests, channel, policy);
        assert_eq!(slab, oracle, "{}: slab ≠ reference", server.scheme_name());
        for shards in shard_counts() {
            let sharded =
                run_requests_sharded_channel(server.as_ref(), &requests, shards, channel, policy);
            assert_eq!(
                slab,
                sharded,
                "{}: {shards} shards diverged under churn",
                server.scheme_name()
            );
        }
        for (i, r) in slab.iter().enumerate() {
            let direct = server.probe_with_channel(r.key, r.arrival, channel, policy);
            assert_eq!(
                r.outcome,
                direct,
                "{}: engine vs versioned walker diverged at req {i}",
                server.scheme_name()
            );
        }
        let skews: u64 = slab
            .iter()
            .map(|r| u64::from(r.outcome.version_skews))
            .sum();
        assert!(
            skews > 0,
            "{}: 20% churn must produce version skews",
            server.scheme_name()
        );
    }
}

/// Outage windows actually bite, and recovery is truthful: on a channel
/// with scheduled outages some reads land in dead air (retries > 0), a
/// bounded policy abandons rather than answers wrongly, and abandonment
/// decisions match across drivers (checked above) — here we pin that the
/// counters move and abandoned queries are never "found".
#[test]
fn outage_recovery_is_truthful() {
    let (ds, pool) = DatasetBuilder::new(60, 0xB1259)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let requests = request_mix(&ds, &pool, 72);
    // One third of the air is dead, in long spans.
    let channel =
        ChannelModel::iid(ErrorModel::NONE).with_outages(OutageSchedule::new(1_500, 500, 0xDEAD));
    let policy = RetryPolicy::bounded(2);
    let present: std::collections::BTreeSet<u64> = ds.keys().map(|k| k.0).collect();
    let mut any_retries = false;
    let mut any_abandoned = false;
    for sys in all_systems(&ds, &params) {
        let done: Vec<CompletedRequest> =
            bda_sim::run_requests_channel(sys.as_ref(), &requests, channel, policy);
        for r in &done {
            assert!(!r.outcome.aborted, "{}", sys.scheme_name());
            any_retries |= r.outcome.retries > 0;
            if r.outcome.abandoned {
                assert!(!r.outcome.found, "{}", sys.scheme_name());
                any_abandoned = true;
            } else {
                assert_eq!(
                    r.outcome.found,
                    present.contains(&r.key.0),
                    "{} answered wrongly for key {} under outages",
                    sys.scheme_name(),
                    r.key
                );
            }
        }
    }
    assert!(any_retries, "a 33% outage channel must corrupt some reads");
    assert!(
        any_abandoned,
        "a 2-retry budget must abandon under 33% outages"
    );
}
