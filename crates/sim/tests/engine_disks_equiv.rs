//! Cross-driver equivalence on **broadcast-disk (stratified) programs**.
//!
//! The disk constructor changes the broadcast program's *shape* — hot
//! records repeat, index frames route to the next occurrence — but it must
//! not change the simulator contract: the slab engine, the naive reference
//! oracle, the sharded engine (every shard count), and the fast-forwarding
//! walker all agree bit-identically on every disk-capable scheme, across a
//! lossless channel, a 15 % error-prone channel with bounded retries, and
//! a 20 %-churn dynamic program. Observability (span sums, histograms,
//! percentiles) merges exactly too.

use bda_core::{
    Dataset, DiskConfig, DiskScheme, DynSystem, ErrorModel, FlatDisksScheme, Key, Params,
    RetryPolicy, Scheme, Ticks,
};
use bda_datagen::DatasetBuilder;
use bda_signature::SimpleSignatureDisksScheme;
use bda_sim::engine::reference::run_requests_reference_with_faults;
use bda_sim::{
    run_requests_observed, run_requests_sharded_observed, run_requests_sharded_with_faults,
    run_requests_with_faults, CompletedRequest, Engine, ShardedEngine, UpdateSpec, VersionedServer,
};

/// 15 % loss — the suite's error-prone channel.
const LOSS: f64 = 0.15;
/// 20 % of records touched per cycle — the suite's churn rate.
const CHURN: f64 = 0.20;
/// The stratification depth under test. (D = 1 bit-identity is pinned by
/// the property suite in `bda-core` and per-scheme wrapper tests.)
const DISKS: usize = 3;

/// Frozen builds of every disk-capable scheme family at `D = 3`: the two
/// interleaved scan layouts plus the chunked-navigation wrapper around
/// hashing and distributed indexing.
fn disk_systems(ds: &Dataset, p: &Params) -> Vec<Box<dyn DynSystem>> {
    let d = DiskConfig::new(DISKS);
    vec![
        Box::new(FlatDisksScheme::new(d).build(ds, p).unwrap()),
        Box::new(SimpleSignatureDisksScheme::new(d).build(ds, p).unwrap()),
        Box::new(
            DiskScheme::new(bda_hash::HashScheme::new(), d)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            DiskScheme::new(bda_btree::DistributedScheme::new(), d)
                .build(ds, p)
                .unwrap(),
        ),
    ]
}

/// Shard counts: 1, 2, 3, 7 and the host's core count, deduplicated.
fn shard_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut counts = vec![1, 2, 3, 7, cores];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Deterministic request mix spreading arrivals over `span` bytes of air
/// time, present and absent keys interleaved, unsorted.
fn request_mix(ds: &Dataset, pool: &[Key], n: usize, span: Ticks) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..n)
        .map(|i| {
            let t = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            let key = if i % 6 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 37) % keys.len()]
            };
            (t % span.max(1), key)
        })
        .collect()
}

/// Lossless with unbounded retries, and 15 % loss with a bounded policy
/// so abandonment paths are exercised on stratified programs too.
fn fault_modes() -> [(ErrorModel, RetryPolicy); 2] {
    [
        (ErrorModel::NONE, RetryPolicy::UNBOUNDED),
        (ErrorModel::new(LOSS, 0xFA57), RetryPolicy::bounded(2)),
    ]
}

/// Run a batch on a slab engine with fast-forward pinned on or off.
fn run_with_ff(
    sys: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    errors: ErrorModel,
    policy: RetryPolicy,
    ff: bool,
) -> (Vec<CompletedRequest>, u64) {
    let mut engine = Engine::with_faults(sys, errors, policy);
    engine.set_fast_forward(ff);
    let done = engine.run_batch(requests);
    (done, engine.stats().events)
}

/// Slab engine ≡ reference oracle ≡ sharded engine (every shard count) on
/// all four disk-capable schemes, lossless and at 15 % loss — outcomes
/// and the shard-invariant stats projection both.
#[test]
fn disk_outcomes_agree_across_all_drivers_and_shard_counts() {
    let (ds, pool) = DatasetBuilder::new(60, 0xD15C)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    for (errors, policy) in fault_modes() {
        for sys in disk_systems(&ds, &params) {
            let requests = request_mix(&ds, &pool, 90, 12 * sys.cycle_len());
            let mut single = Engine::with_faults(sys.as_ref(), errors, policy);
            let baseline = single.run_batch(&requests);
            let oracle =
                run_requests_reference_with_faults(sys.as_ref(), &requests, errors, policy);
            let name = sys.scheme_name();
            assert_eq!(
                baseline, oracle,
                "{name}: slab engine ≠ reference oracle on stratified program"
            );
            for shards in shard_counts() {
                let mut engine = ShardedEngine::with_faults(sys.as_ref(), shards, errors, policy);
                let merged = engine.run_batch(&requests);
                assert_eq!(
                    baseline, merged,
                    "{name} outcomes drifted at {shards} shards (loss={})",
                    errors.loss_prob
                );
                assert_eq!(
                    single.stats().outcome_counters(),
                    engine.stats().outcome_counters(),
                    "{name} stats drifted at {shards} shards"
                );
            }
        }
    }
}

/// The fast-forwarding walker is exact on stratified programs: outcomes
/// match the bucket-by-bucket path bit for bit, and the jump never *adds*
/// scheduler events. Repetition must not break ff eligibility for the
/// scan layouts — the interleaved flat-disk program still collapses its
/// event count.
#[test]
fn fast_forward_is_exact_on_stratified_programs() {
    let (ds, pool) = DatasetBuilder::new(60, 0xD15D)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    for (errors, policy) in fault_modes() {
        for sys in disk_systems(&ds, &params) {
            let requests = request_mix(&ds, &pool, 72, 8 * sys.cycle_len());
            let (fast, fast_events) = run_with_ff(sys.as_ref(), &requests, errors, policy, true);
            let (slow, slow_events) = run_with_ff(sys.as_ref(), &requests, errors, policy, false);
            let name = sys.scheme_name();
            assert_eq!(fast, slow, "{name}: fast-forward changed a disk outcome");
            assert!(
                fast_events <= slow_events,
                "{name}: fast-forward added events ({fast_events} > {slow_events})"
            );
        }
    }
    // Eligibility, not just exactness: the flat scan layout must still
    // collapse wake-ups by an order of magnitude on a lossless channel.
    let sys = FlatDisksScheme::new(DiskConfig::new(DISKS))
        .build(&ds, &params)
        .unwrap();
    let requests = request_mix(&ds, &pool, 72, 8 * DynSystem::cycle_len(&sys));
    let (fast, fe) = run_with_ff(
        &sys,
        &requests,
        ErrorModel::NONE,
        RetryPolicy::UNBOUNDED,
        true,
    );
    let (slow, se) = run_with_ff(
        &sys,
        &requests,
        ErrorModel::NONE,
        RetryPolicy::UNBOUNDED,
        false,
    );
    assert_eq!(fast, slow);
    assert!(
        fe * 10 <= se,
        "flat-disks lost fast-forward eligibility: {se} → {fe} events"
    );
}

/// Merged observability is exact on stratified programs: span sums,
/// access/tuning/retry histograms and every percentile agree between the
/// single engine and each sharded merge.
#[test]
fn observed_metrics_merge_exactly_on_stratified_programs() {
    let (ds, pool) = DatasetBuilder::new(60, 0xD15E)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let errors = ErrorModel::new(LOSS, 0x717);
    let policy = RetryPolicy::bounded(3);
    for sys in disk_systems(&ds, &params) {
        let requests = request_mix(&ds, &pool, 90, 12 * sys.cycle_len());
        let (baseline, hub) = run_requests_observed(sys.as_ref(), &requests, errors, policy);
        // Span sums must tie out against the outcomes they measure.
        let access_sum: u128 = baseline.iter().map(|r| u128::from(r.outcome.access)).sum();
        let name = sys.scheme_name();
        assert_eq!(
            access_sum,
            hub.access.sum(),
            "{name}: access histogram sum ≠ outcome access sum"
        );
        for shards in shard_counts() {
            let (merged, sharded_hub) =
                run_requests_sharded_observed(sys.as_ref(), &requests, shards, errors, policy);
            assert_eq!(baseline, merged, "{name}, {shards} shards");
            assert_eq!(
                hub.spans, sharded_hub.spans,
                "{name} spans, {shards} shards"
            );
            assert_eq!(
                hub.access, sharded_hub.access,
                "{name} access histogram, {shards} shards"
            );
            assert_eq!(
                hub.tuning, sharded_hub.tuning,
                "{name} tuning histogram, {shards} shards"
            );
            assert_eq!(
                hub.retry_depth, sharded_hub.retry_depth,
                "{name} retry-depth histogram, {shards} shards"
            );
            assert_eq!(hub.completed, sharded_hub.completed);
            assert_eq!(hub.found, sharded_hub.found);
            assert_eq!(hub.abandoned, sharded_hub.abandoned);
            for q in [0.5, 0.9, 0.99, 1.0] {
                assert_eq!(
                    hub.access.quantile(q),
                    sharded_hub.access.quantile(q),
                    "{name} access p{q}, {shards} shards"
                );
                assert_eq!(
                    hub.tuning.quantile(q),
                    sharded_hub.tuning.quantile(q),
                    "{name} tuning p{q}, {shards} shards"
                );
            }
        }
    }
}

/// Build a churned [`VersionedServer`] for every disk-capable scheme and
/// hand each one (type-erased, span covering all epochs) to `f` — the
/// stratified constructor piggybacks on the versioned-cycle machinery
/// without any scheme-specific glue.
fn with_all_disk_versioned(
    ds: &Dataset,
    p: &Params,
    spec: UpdateSpec,
    f: &mut dyn FnMut(&dyn DynSystem, Ticks),
) {
    fn one<Sch: Scheme>(
        scheme: Sch,
        ds: &Dataset,
        p: &Params,
        spec: UpdateSpec,
        f: &mut dyn FnMut(&dyn DynSystem, Ticks),
    ) where
        <Sch::System as bda_core::System>::Machine: 'static,
    {
        let server = VersionedServer::build(&scheme, ds, p, spec).unwrap();
        let span =
            server.timeline().epochs().last().map_or(0, |e| e.start) + 4 * server.cycle_len();
        f(&server, span);
    }
    let d = DiskConfig::new(DISKS);
    one(FlatDisksScheme::new(d), ds, p, spec, f);
    one(SimpleSignatureDisksScheme::new(d), ds, p, spec, f);
    one(
        DiskScheme::new(bda_hash::HashScheme::new(), d),
        ds,
        p,
        spec,
        f,
    );
    one(
        DiskScheme::new(bda_btree::DistributedScheme::new(), d),
        ds,
        p,
        spec,
        f,
    );
}

/// A 20 %-churn dynamic stratified program: the stale machinery engages
/// (re-ranking piggybacks on versioned cycles), and every shard count
/// reproduces the unsharded outcomes exactly, with and without loss.
#[test]
fn churned_stratified_programs_are_shard_invariant() {
    let (ds, pool) = DatasetBuilder::new(60, 0xD15F)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let spec = UpdateSpec {
        rate: CHURN,
        seed: 0xBEEF,
        horizon_cycles: 16,
    };
    for (errors, policy) in fault_modes() {
        with_all_disk_versioned(&ds, &params, spec, &mut |server, span| {
            let requests = request_mix(&ds, &pool, 70, span);
            let baseline = run_requests_with_faults(server, &requests, errors, policy);
            let churn_engaged = baseline.iter().any(|r| r.outcome.version_skews > 0);
            assert!(
                churn_engaged,
                "{}: 20% churn must exercise the stale machinery on disks",
                server.scheme_name()
            );
            for shards in shard_counts() {
                let merged =
                    run_requests_sharded_with_faults(server, &requests, shards, errors, policy);
                assert_eq!(
                    baseline,
                    merged,
                    "{} churn outcomes drifted at {shards} shards (loss={})",
                    server.scheme_name(),
                    errors.loss_prob
                );
            }
        });
    }
}
