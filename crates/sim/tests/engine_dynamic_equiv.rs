//! Dynamic-broadcast differential suite.
//!
//! Two keystone properties of the versioned-cycle subsystem:
//!
//! 1. **Zero-update identity**: a [`VersionedServer`] built with update
//!    rate 0 collapses to a single epoch whose walks are *bit-identical*
//!    to the frozen channel, on every scheme, lossless and lossy alike.
//!    Dynamic mode costs nothing when nothing changes.
//! 2. **Driver agreement under churn**: with real update rates (1 %, 5 %,
//!    20 % of records per cycle), the slab engine, the naive reference
//!    heap, and the isolated direct walker produce identical per-request
//!    outcomes — including stale-restart and version-skew counts — with
//!    and without packet loss on top.
//!
//! Plus the truthfulness oracle: every verdict is checked against the
//! actual dataset snapshots on the air during the walk. A deleted key is
//! never served from a stale program; a key present throughout is never
//! missed; no walk ever aborts with a protocol bug.

use bda_core::{Dataset, DynSystem, ErrorModel, Key, Params, RetryPolicy, Scheme, System, Ticks};
use bda_datagen::DatasetBuilder;
use bda_sim::engine::reference::run_requests_reference_with_faults;
use bda_sim::{run_requests, run_requests_with_faults, UpdateSpec, VersionedServer};

/// Update rates the suite sweeps (fraction of records touched per cycle).
const UPDATE_RATES: [f64; 3] = [0.01, 0.05, 0.20];

/// Epoch geometry handed to the check closures: `(version, start)` in air
/// order, parallel to the dataset snapshots.
type EpochBounds = Vec<(u64, Ticks)>;
type ServerVisitor<'a> = dyn FnMut(&dyn DynSystem, &[(u64, Dataset)], &EpochBounds) + 'a;

/// Build a [`VersionedServer`] for every scheme family in the repo and
/// hand each one (type-erased) to `f` along with its per-epoch dataset
/// snapshots and epoch bounds.
fn with_all_servers(ds: &Dataset, p: &Params, spec: UpdateSpec, f: &mut ServerVisitor<'_>) {
    fn one<Sch: Scheme>(
        scheme: Sch,
        ds: &Dataset,
        p: &Params,
        spec: UpdateSpec,
        f: &mut ServerVisitor<'_>,
    ) where
        <Sch::System as System>::Machine: 'static,
    {
        let server = VersionedServer::build(&scheme, ds, p, spec).unwrap();
        let bounds: EpochBounds = server
            .timeline()
            .epochs()
            .iter()
            .map(|e| (e.version(), e.start))
            .collect();
        f(&server, server.datasets(), &bounds);
    }
    one(bda_core::FlatScheme, ds, p, spec, f);
    one(bda_btree::OneMScheme::new(), ds, p, spec, f);
    one(bda_btree::DistributedScheme::new(), ds, p, spec, f);
    one(bda_hash::HashScheme::new(), ds, p, spec, f);
    one(bda_signature::SimpleSignatureScheme::new(), ds, p, spec, f);
    one(
        bda_signature::IntegratedSignatureScheme::new(8),
        ds,
        p,
        spec,
        f,
    );
    one(
        bda_signature::MultiLevelSignatureScheme::new(8),
        ds,
        p,
        spec,
        f,
    );
    one(bda_hybrid::HybridScheme::new(), ds, p, spec, f);
}

/// Frozen builds of the same schemes, in the same order (the zero-update
/// comparison baseline).
fn all_frozen(ds: &Dataset, p: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(bda_core::FlatScheme.build(ds, p).unwrap()),
        Box::new(bda_btree::OneMScheme::new().build(ds, p).unwrap()),
        Box::new(bda_btree::DistributedScheme::new().build(ds, p).unwrap()),
        Box::new(bda_hash::HashScheme::new().build(ds, p).unwrap()),
        Box::new(
            bda_signature::SimpleSignatureScheme::new()
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::IntegratedSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::MultiLevelSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(bda_hybrid::HybridScheme::new().build(ds, p).unwrap()),
    ]
}

/// A deterministic request mix whose arrivals spread over `span` bytes of
/// air time (so walks land in every epoch), with present and absent keys
/// interleaved.
fn request_mix(ds: &Dataset, pool: &[Key], n: usize, span: Ticks) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..n)
        .map(|i| {
            let t = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            let key = if i % 6 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 37) % keys.len()]
            };
            (t % span.max(1), key)
        })
        .collect()
}

/// Air span covered by a timeline: last epoch start plus a few of the
/// initial program's cycles, so some arrivals land past the last update.
fn timeline_span(sys: &dyn DynSystem, bounds: &EpochBounds) -> Ticks {
    bounds.last().map_or(0, |&(_, s)| s) + 4 * sys.cycle_len()
}

/// The keystone: rate 0 produces one epoch and **bit-identical** outcomes
/// to the frozen channel on all eight schemes — lossless and at 10 % loss.
#[test]
fn zero_update_dynamic_mode_is_bit_identical_to_frozen() {
    let (ds, pool) = DatasetBuilder::new(60, 0x0D1)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let frozen = all_frozen(&ds, &params);
    let mut idx = 0usize;
    let spec = UpdateSpec {
        rate: 0.0,
        seed: 0xBEEF,
        horizon_cycles: 16,
    };
    with_all_servers(&ds, &params, spec, &mut |server, snaps, bounds| {
        let baseline = frozen[idx].as_ref();
        assert_eq!(
            bounds.len(),
            1,
            "{}: empty batches must coalesce",
            server.scheme_name()
        );
        assert_eq!(snaps.len(), 1);
        let requests = request_mix(&ds, &pool, 80, 16 * server.cycle_len());
        let dynamic = run_requests(server, &requests);
        let fixed = run_requests(baseline, &requests);
        assert_eq!(
            dynamic,
            fixed,
            "{}: lossless identity",
            server.scheme_name()
        );
        for r in &dynamic {
            assert_eq!(r.outcome.version_skews, 0);
            assert_eq!(r.outcome.stale_restarts, 0);
        }
        let errors = ErrorModel::new(0.10, 0xFA57);
        let policy = RetryPolicy::UNBOUNDED;
        let dynamic = run_requests_with_faults(server, &requests, errors, policy);
        let fixed = run_requests_with_faults(baseline, &requests, errors, policy);
        assert_eq!(dynamic, fixed, "{}: lossy identity", server.scheme_name());
        idx += 1;
    });
}

/// Slab engine ≡ reference heap ≡ direct walker under churn — outcomes
/// (including restart and skew counts) identical request by request, at
/// every update rate, lossless and composed with 10 % loss.
#[test]
fn slab_reference_and_walker_agree_under_updates() {
    let (ds, pool) = DatasetBuilder::new(60, 0x10EB)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let policy = RetryPolicy::UNBOUNDED;
    for rate in UPDATE_RATES {
        let spec = UpdateSpec {
            rate,
            seed: 0xBEEF,
            horizon_cycles: 16,
        };
        for errors in [ErrorModel::NONE, ErrorModel::new(0.10, 0xFA57)] {
            with_all_servers(&ds, &params, spec, &mut |server, _snaps, bounds| {
                let requests = request_mix(&ds, &pool, 60, timeline_span(server, bounds));
                let slab = run_requests_with_faults(server, &requests, errors, policy);
                let naive = run_requests_reference_with_faults(server, &requests, errors, policy);
                assert_eq!(slab.len(), requests.len());
                for (i, (a, b)) in slab.iter().zip(&naive).enumerate() {
                    assert_eq!(
                        &a.outcome,
                        &b.outcome,
                        "{} slab vs reference diverged at req {i}, rate {rate}",
                        server.scheme_name()
                    );
                    let direct = server.probe_with_policy(a.key, a.arrival, errors, policy);
                    assert_eq!(
                        a.outcome,
                        direct,
                        "{} slab vs walker diverged at req {i}, rate {rate}",
                        server.scheme_name()
                    );
                    assert!(
                        !a.outcome.aborted,
                        "{} aborted at req {i}, rate {rate} — protocol bug",
                        server.scheme_name()
                    );
                }
            });
        }
    }
}

/// Truthfulness oracle: every verdict matches some dataset actually on the
/// air during the walk. Deleted keys never resolve from stale programs;
/// present-throughout keys are never missed; nothing aborts; and at 20 %
/// churn the stale machinery demonstrably engages on every scheme.
#[test]
fn verdicts_are_truthful_against_epoch_datasets() {
    let (ds, pool) = DatasetBuilder::new(60, 0x5EED)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let spec = UpdateSpec {
        rate: 0.20,
        seed: 0xABC7,
        horizon_cycles: 16,
    };
    for errors in [ErrorModel::NONE, ErrorModel::new(0.10, 0x717)] {
        with_all_servers(&ds, &params, spec, &mut |server, snaps, bounds| {
            assert!(
                bounds.len() > 1,
                "{}: 20% churn must produce multiple epochs",
                server.scheme_name()
            );
            let requests = request_mix(&ds, &pool, 90, timeline_span(server, bounds));
            let completed =
                run_requests_with_faults(server, &requests, errors, RetryPolicy::UNBOUNDED);
            let mut skews = 0u64;
            for r in &completed {
                let o = &r.outcome;
                assert!(!o.aborted, "{}: abort", server.scheme_name());
                skews += u64::from(o.version_skews);
                if o.abandoned {
                    assert!(!o.found, "abandoned yet found");
                    continue;
                }
                // Epochs whose air interval overlaps [arrival, arrival+access].
                let end_of_walk = r.arrival + o.access;
                let overlapping: Vec<usize> = (0..bounds.len())
                    .filter(|&i| {
                        let start = bounds[i].1;
                        let next = bounds.get(i + 1).map_or(Ticks::MAX, |&(_, s)| s);
                        start <= end_of_walk && next > r.arrival
                    })
                    .collect();
                assert!(!overlapping.is_empty());
                let in_some = overlapping.iter().any(|&i| snaps[i].1.contains(r.key));
                let absent_some = overlapping.iter().any(|&i| !snaps[i].1.contains(r.key));
                if o.found {
                    assert!(
                        in_some,
                        "{}: found key {} never broadcast during its walk",
                        server.scheme_name(),
                        r.key
                    );
                } else {
                    assert!(
                        absent_some,
                        "{}: missed key {} present in every overlapping program",
                        server.scheme_name(),
                        r.key
                    );
                }
            }
            assert!(
                skews > 0,
                "{}: no version skew ever observed at 20% churn",
                server.scheme_name()
            );
        });
    }
}
