//! Equivalence suite for the slab + bucket-aligned-wakeup engine: for any
//! request batch — simultaneous arrivals, unsorted order, absent keys —
//! the slab engine must produce exactly the outcomes of the naive
//! per-request reference heap it replaced, and its event accounting must
//! be deterministic run-to-run.

use bda_core::{DynSystem, Key, Params, Scheme, Ticks};
use bda_datagen::DatasetBuilder;
use bda_hash::HashScheme;
use bda_sim::engine::reference::run_requests_reference;
use bda_sim::Engine;
use proptest::prelude::*;

fn systems(ds: &bda_core::Dataset, p: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(bda_core::FlatScheme.build(ds, p).unwrap()),
        Box::new(HashScheme::new().build(ds, p).unwrap()),
        Box::new(bda_btree::DistributedScheme::new().build(ds, p).unwrap()),
        Box::new(
            bda_signature::IntegratedSignatureScheme::new(5)
                .build(ds, p)
                .unwrap(),
        ),
    ]
}

/// A request batch exercising the engine's scheduling edge cases:
/// arrivals are drawn from a tiny time range (collisions guaranteed),
/// returned unsorted, and keys mix present and absent.
fn arb_batch() -> impl Strategy<Value = (Vec<(Ticks, Key)>, u64)> {
    (
        proptest::collection::vec(
            (0u64..5_000, any::<proptest::sample::Index>(), any::<bool>()),
            1..120,
        ),
        any::<u64>(),
    )
        .prop_map(|(raw, seed)| {
            let (ds, pool) = DatasetBuilder::new(40, seed)
                .build_with_absent_pool(8)
                .expect("dataset");
            let keys: Vec<Key> = ds.keys().collect();
            let reqs = raw
                .into_iter()
                .map(|(t, idx, present)| {
                    let key = if present {
                        keys[idx.index(keys.len())]
                    } else {
                        pool[idx.index(pool.len())]
                    };
                    (t, key)
                })
                .collect();
            (reqs, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Slab/batched scheduling is outcome-identical to the naive
    /// reference heap, request by request, for every scheme family.
    #[test]
    fn slab_engine_is_outcome_identical_to_reference((requests, seed) in arb_batch()) {
        let (ds, _) = DatasetBuilder::new(40, seed)
            .build_with_absent_pool(8)
            .expect("dataset");
        let params = Params::paper();
        for sys in systems(&ds, &params) {
            let slab = Engine::new(sys.as_ref()).run_batch(&requests);
            let naive = run_requests_reference(sys.as_ref(), &requests);
            prop_assert_eq!(slab.len(), naive.len());
            for (a, b) in slab.iter().zip(&naive) {
                prop_assert_eq!(a.arrival, b.arrival, "{}", sys.scheme_name());
                prop_assert_eq!(a.key, b.key, "{}", sys.scheme_name());
                prop_assert_eq!(&a.outcome, &b.outcome, "{}", sys.scheme_name());
            }
        }
    }

    /// Reusing one engine (recycled slots, pooled scheduler vectors) never
    /// changes outcomes relative to a fresh engine per batch.
    #[test]
    fn recycled_engine_matches_fresh_engine((requests, seed) in arb_batch()) {
        let (ds, _) = DatasetBuilder::new(40, seed)
            .build_with_absent_pool(8)
            .expect("dataset");
        let params = Params::paper();
        for sys in systems(&ds, &params) {
            let mut reused = Engine::new(sys.as_ref());
            reused.run_batch(&requests); // warm: slots + pools now recycled
            let warm = reused.run_batch(&requests);
            let fresh = Engine::new(sys.as_ref()).run_batch(&requests);
            prop_assert_eq!(warm, fresh, "{}", sys.scheme_name());
        }
    }
}

/// Event accounting is deterministic: two engines fed the same requests
/// report identical event, batch and completion counts. Pins the engine's
/// run-to-run reproducibility, which the adaptive simulator's accuracy
/// stopping rule relies on.
#[test]
fn event_counts_are_deterministic_across_runs() {
    let (ds, pool) = DatasetBuilder::new(60, 17)
        .build_with_absent_pool(6)
        .unwrap();
    let params = Params::paper();
    let keys: Vec<Key> = ds.keys().collect();
    // Unsorted arrivals with duplicates, present and absent keys.
    let requests: Vec<(Ticks, Key)> = (0..500)
        .map(|i| {
            let t = (i * 7919) % 4096;
            let key = if i % 5 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 31) % keys.len()]
            };
            (t as Ticks, key)
        })
        .collect();
    for sys in systems(&ds, &params) {
        let mut a = Engine::new(sys.as_ref());
        let mut b = Engine::new(sys.as_ref());
        let ra = a.run_batch(&requests);
        let rb = b.run_batch(&requests);
        assert_eq!(ra, rb, "{} outcomes drifted", sys.scheme_name());
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.events, sb.events, "{} event count", sys.scheme_name());
        assert_eq!(
            sa.wake_batches,
            sb.wake_batches,
            "{} batch count",
            sys.scheme_name()
        );
        assert_eq!(sa.completed, sb.completed);
        assert_eq!(sa.peak_in_flight, sb.peak_in_flight);
    }
}
