//! Lossy-channel differential suite: over an error-prone channel the slab
//! engine, the naive reference heap, and an isolated direct walker must
//! produce **identical** per-request outcomes.
//!
//! This is the property that makes fault injection trustworthy: the
//! [`bda_core::ErrorModel`] is a pure function of (bucket start time,
//! seed), so every execution strategy sees the same corrupted buckets for
//! the same request — any divergence is an engine scheduling bug, not
//! noise. The suite sweeps all eight schemes at 2 %, 10 % and 25 % loss,
//! with both unbounded and bounded retry policies, and additionally pins
//! streaming-mode behaviour under abandonment (no slot leak, deterministic
//! event accounting).

use bda_core::{DynSystem, ErrorModel, Key, Params, RetryPolicy, Scheme, Ticks};
use bda_datagen::DatasetBuilder;
use bda_sim::engine::reference::run_requests_reference_with_faults;
use bda_sim::{run_requests_with_faults, Engine};

/// Loss rates the differential suite sweeps.
const LOSS_RATES: [f64; 3] = [0.02, 0.10, 0.25];

/// Every scheme family in the repo, including the composite hybrid.
fn all_systems(ds: &bda_core::Dataset, p: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(bda_core::FlatScheme.build(ds, p).unwrap()),
        Box::new(bda_btree::OneMScheme::new().build(ds, p).unwrap()),
        Box::new(bda_btree::DistributedScheme::new().build(ds, p).unwrap()),
        Box::new(bda_hash::HashScheme::new().build(ds, p).unwrap()),
        Box::new(
            bda_signature::SimpleSignatureScheme::new()
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::IntegratedSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::MultiLevelSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(bda_hybrid::HybridScheme::new().build(ds, p).unwrap()),
    ]
}

/// A deterministic request mix: unsorted arrivals with collisions, present
/// and absent keys interleaved.
fn request_mix(ds: &bda_core::Dataset, pool: &[Key], n: usize) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..n)
        .map(|i| {
            let t = ((i * 6151) % 9000) as Ticks;
            let key = if i % 6 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 37) % keys.len()]
            };
            (t, key)
        })
        .collect()
}

/// Slab engine ≡ reference heap ≡ direct walker, request by request, for
/// every scheme at every loss rate, retrying forever.
#[test]
fn slab_reference_and_walker_agree_under_loss() {
    let (ds, pool) = DatasetBuilder::new(60, 0x10EB)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let requests = request_mix(&ds, &pool, 90);
    for loss in LOSS_RATES {
        let errors = ErrorModel::new(loss, 0xFA57);
        let policy = RetryPolicy::UNBOUNDED;
        for sys in all_systems(&ds, &params) {
            let slab = run_requests_with_faults(sys.as_ref(), &requests, errors, policy);
            let naive = run_requests_reference_with_faults(sys.as_ref(), &requests, errors, policy);
            assert_eq!(slab.len(), requests.len());
            assert_eq!(naive.len(), requests.len());
            for (i, (a, b)) in slab.iter().zip(&naive).enumerate() {
                assert_eq!(
                    &a.outcome,
                    &b.outcome,
                    "{} slab vs reference diverged at req {i}, loss {loss}",
                    sys.scheme_name()
                );
                let direct = sys.probe_with_policy(a.key, a.arrival, errors, policy);
                assert_eq!(
                    a.outcome,
                    direct,
                    "{} slab vs walker diverged at req {i}, loss {loss}",
                    sys.scheme_name()
                );
            }
        }
    }
}

/// Same differential property with a *bounded* retry policy: abandonment
/// decisions (which depend on exact corrupt-read counts and elapsed time)
/// must also be identical across all three executions.
#[test]
fn bounded_retry_abandonment_is_identical_across_drivers() {
    let (ds, pool) = DatasetBuilder::new(60, 0x10EB)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let requests = request_mix(&ds, &pool, 60);
    let errors = ErrorModel::new(0.25, 7);
    let policy = RetryPolicy::bounded(2);
    for sys in all_systems(&ds, &params) {
        let slab = run_requests_with_faults(sys.as_ref(), &requests, errors, policy);
        let naive = run_requests_reference_with_faults(sys.as_ref(), &requests, errors, policy);
        let mut abandoned = 0u64;
        for (a, b) in slab.iter().zip(&naive) {
            assert_eq!(&a.outcome, &b.outcome, "{}", sys.scheme_name());
            let direct = sys.probe_with_policy(a.key, a.arrival, errors, policy);
            assert_eq!(a.outcome, direct, "{}", sys.scheme_name());
            // Truthfulness: a wrong answer is never reported.
            assert!(!a.outcome.aborted, "{}", sys.scheme_name());
            if a.outcome.abandoned {
                assert!(!a.outcome.found, "{}", sys.scheme_name());
                abandoned += 1;
            }
        }
        // At 25 % loss with a 2-retry budget some queries must give up —
        // otherwise the policy was never consulted.
        assert!(
            abandoned > 0,
            "{} never abandoned at 25% loss / 2 retries",
            sys.scheme_name()
        );
    }
}

/// Every present key is eventually found (or truthfully abandoned under a
/// bounded policy) — never answered wrongly — when driven through the
/// engine rather than an isolated walker.
#[test]
fn engine_never_lies_under_loss() {
    let (ds, pool) = DatasetBuilder::new(80, 3)
        .build_with_absent_pool(12)
        .unwrap();
    let params = Params::paper();
    let requests = request_mix(&ds, &pool, 120);
    let present: std::collections::BTreeSet<u64> = ds.keys().map(|k| k.0).collect();
    let errors = ErrorModel::new(0.10, 11);
    for sys in all_systems(&ds, &params) {
        for r in run_requests_with_faults(sys.as_ref(), &requests, errors, RetryPolicy::UNBOUNDED) {
            assert!(!r.outcome.aborted, "{}", sys.scheme_name());
            assert!(!r.outcome.abandoned, "unbounded policy abandoned");
            assert_eq!(
                r.outcome.found,
                present.contains(&r.key.0),
                "{} answered wrongly for key {} under loss",
                sys.scheme_name(),
                r.key
            );
        }
    }
}

/// Streaming mode under heavy loss with an abandoning policy: abandonment
/// must free slots (the arena stays capped at `max_in_flight`), every
/// streamed request must still complete, and event accounting must be
/// deterministic run to run.
#[test]
fn run_stream_recycles_slots_and_stays_deterministic_under_loss() {
    let (ds, pool) = DatasetBuilder::new(50, 21)
        .build_with_absent_pool(8)
        .unwrap();
    let params = Params::paper();
    let requests = request_mix(&ds, &pool, 400);
    let errors = ErrorModel::new(0.25, 5);
    let policy = RetryPolicy::bounded(1); // abandon aggressively
    let cap = 8usize;
    let run = |sys: &dyn DynSystem| {
        let mut engine = Engine::with_faults(sys, errors, policy);
        let mut completions = Vec::new();
        engine.run_stream(requests.iter().copied(), cap, |r| {
            completions.push(r.outcome)
        });
        (completions, engine.stats(), engine.arena_len())
    };
    for sys in all_systems(&ds, &params) {
        let (c1, s1, arena) = run(sys.as_ref());
        // If an abandoning client leaked its slot, admission would stall at
        // max_in_flight and the stream could never drain all 400 requests.
        assert_eq!(
            c1.len(),
            requests.len(),
            "{} leaked slots",
            sys.scheme_name()
        );
        assert!(
            arena <= cap,
            "{} arena {arena} exceeded cap {cap}",
            sys.scheme_name()
        );
        assert!(
            c1.iter().any(|o| o.abandoned),
            "{} policy never fired at 25% loss",
            sys.scheme_name()
        );
        assert_eq!(s1.completed, requests.len() as u64);
        assert_eq!(
            s1.abandoned,
            c1.iter().filter(|o| o.abandoned).count() as u64
        );
        // Determinism: a second engine fed the same stream reports the
        // same outcomes and the same event count.
        let (c2, s2, _) = run(sys.as_ref());
        assert_eq!(c1, c2, "{} outcomes drifted", sys.scheme_name());
        assert_eq!(
            s1.events,
            s2.events,
            "{} event count drifted",
            sys.scheme_name()
        );
        assert_eq!(s1.corrupt_reads, s2.corrupt_reads);
    }
}

/// With `ErrorModel::NONE` the faulty entry points are bit-identical to
/// the lossless ones regardless of the retry policy — the policy is only
/// ever consulted at a corrupt read.
#[test]
fn lossless_faulty_paths_match_plain_paths() {
    let (ds, pool) = DatasetBuilder::new(40, 8)
        .build_with_absent_pool(6)
        .unwrap();
    let params = Params::paper();
    let requests = request_mix(&ds, &pool, 50);
    for policy in [
        RetryPolicy::UNBOUNDED,
        RetryPolicy::bounded(0),
        RetryPolicy::bounded(3).with_backoff(2).with_deadline(1_000),
    ] {
        for sys in all_systems(&ds, &params) {
            let plain = bda_sim::run_requests(sys.as_ref(), &requests);
            let faulty =
                run_requests_with_faults(sys.as_ref(), &requests, ErrorModel::NONE, policy);
            assert_eq!(plain, faulty, "{} with {policy:?}", sys.scheme_name());
        }
    }
}
