//! Multichannel differential suite: channel groups must not open any gap
//! between the execution drivers.
//!
//! Every multichannel-capable program — striped flat, striped hashing,
//! striped signature, and the cross-channel indexed group — is run over
//! {lossless, 15 % i.i.d. loss with a bounded retry budget, burst loss
//! plus scheduled outages, 20 % program churn} through:
//!
//! * the slab engine with analytical fast-forward **on** and **off**,
//! * the naive reference heap (the oracle),
//! * the sharded engine at shard counts {1, 2, 3, 7, #cores},
//! * the isolated direct walker, request by request.
//!
//! Per-request outcomes must be bit-identical, and so must the folded
//! observability aggregates: outcome counters, access/tuning/retry-depth
//! histograms, and per-phase span sums (including the new
//! `ChannelSwitch` phase). Per-channel fault seeds are remixed
//! deterministically (`remix_seed`), so all drivers see the same loss on
//! the same channel at the same instant — any divergence is an engine
//! bug, not noise.

use bda_core::{
    BurstModel, ChannelModel, DynSystem, ErrorModel, GroupConfig, IndexedGroupScheme, Key,
    OutageSchedule, Params, RetryPolicy, StripedScheme, Ticks,
};
use bda_datagen::DatasetBuilder;
use bda_obs::{Completion, MetricsHub};
use bda_sim::engine::reference::run_requests_reference_channel;
use bda_sim::{
    run_requests_channel_observed, run_requests_sharded_channel, Engine, StripedVersionedServer,
    UpdateSpec,
};

/// Every multichannel-capable program shape at one group config: the
/// striping conformance subset (one scan layout, one hash layout, one
/// signature layout) plus the cross-channel indexed group.
fn multichannel_systems(
    ds: &bda_core::Dataset,
    p: &Params,
    config: GroupConfig,
) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(
            StripedScheme::new(bda_core::FlatScheme, config)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            StripedScheme::new(bda_hash::HashScheme::new(), config)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            StripedScheme::new(bda_signature::SimpleSignatureScheme::new(), config)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            IndexedGroupScheme::new(config)
                .unwrap()
                .build(ds, p)
                .unwrap(),
        ),
    ]
}

/// A deterministic request mix: unsorted arrivals with collisions, present
/// and absent keys interleaved.
fn request_mix(ds: &bda_core::Dataset, pool: &[Key], n: usize, span: Ticks) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..n)
        .map(|i| {
            let t = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            let key = if i % 6 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 37) % keys.len()]
            };
            (t % span.max(1), key)
        })
        .collect()
}

/// The shard counts the suite sweeps: the acceptance grid plus however
/// many cores this host actually has.
fn shard_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut counts = vec![1, 2, 3, 7, cores];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// The fault grid of the wall: a perfect channel, i.i.d. loss with an
/// abandoning budget, and burst loss with scheduled outages driven by the
/// resynchronization policy.
fn fault_grid() -> Vec<(&'static str, ChannelModel, RetryPolicy)> {
    vec![
        ("lossless", ChannelModel::NONE, RetryPolicy::UNBOUNDED),
        (
            "lossy15",
            ChannelModel::iid(ErrorModel::new(0.15, 0xFA57)),
            RetryPolicy::bounded(2),
        ),
        (
            "burst+outage",
            ChannelModel::burst(BurstModel::new(0.05, 0.25, 0.0, 1.0, 0xB0B))
                .with_outages(OutageSchedule::new(2_500, 250, 0x0A7)),
            RetryPolicy::bounded(24)
                .with_backoff_cap(8)
                .with_jitter(0x1EE7),
        ),
    ]
}

/// Fold one driver's completions plus the direct walker's recorded spans
/// into a [`MetricsHub`], asserting the walker agrees with the driver on
/// every outcome on the way.
fn walker_hub(
    sys: &dyn DynSystem,
    completed: &[bda_sim::CompletedRequest],
    channel: ChannelModel,
    policy: RetryPolicy,
    label: &str,
) -> MetricsHub {
    let mut hub = MetricsHub::new();
    for (i, r) in completed.iter().enumerate() {
        let (out, spans) = sys.probe_recorded_channel(r.key, r.arrival, channel, policy);
        assert_eq!(
            out,
            r.outcome,
            "{}/{label}: engine vs recorded walker diverged at req {i}",
            sys.scheme_name()
        );
        assert!(
            !out.aborted,
            "{}/{label}: aborted at req {i}",
            sys.scheme_name()
        );
        hub.complete_at(
            &Completion {
                end_tick: r.arrival + r.outcome.access,
                access: r.outcome.access,
                tuning: r.outcome.tuning,
                retries: r.outcome.retries,
                stale_restarts: r.outcome.stale_restarts,
                version_skews: r.outcome.version_skews,
                found: r.outcome.found,
                abandoned: r.outcome.abandoned,
            },
            Some(&spans),
        );
    }
    hub
}

/// Assert two hubs agree on every aggregate the drivers fold: outcome
/// counters, all three histograms, and the per-phase span sums.
fn assert_hubs_agree(a: &MetricsHub, b: &MetricsHub, what: &str) {
    assert_eq!(
        (a.completed, a.found, a.abandoned),
        (b.completed, b.found, b.abandoned),
        "{what}: outcome counters diverged"
    );
    assert_eq!(a.access, b.access, "{what}: access histograms diverged");
    assert_eq!(a.tuning, b.tuning, "{what}: tuning histograms diverged");
    assert_eq!(
        a.retry_depth, b.retry_depth,
        "{what}: retry-depth histograms diverged"
    );
    assert_eq!(a.spans, b.spans, "{what}: phase span sums diverged");
}

/// Slab (fast-forward on and off) ≡ reference ≡ sharded {1,2,3,7,#cores}
/// ≡ direct walker on every multichannel-capable program over the whole
/// fault grid, outcomes and folded aggregates alike — at two group
/// shapes, one with free retunes and one paying a real switch cost.
#[test]
fn all_drivers_agree_on_multichannel_groups() {
    let (ds, pool) = DatasetBuilder::new(64, 0x6C64)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    for config in [
        GroupConfig::new(3, 0).unwrap(),
        GroupConfig::new(4, 257).unwrap(),
    ] {
        for (label, channel, policy) in fault_grid() {
            for sys in multichannel_systems(&ds, &params, config) {
                let name = sys.scheme_name();
                let requests = request_mix(&ds, &pool, 72, 8 * sys.cycle_len());
                let mut fast = Engine::with_channel(sys.as_ref(), channel, policy);
                fast.set_fast_forward(true);
                let fast = fast.run_batch(&requests);
                let mut slow = Engine::with_channel(sys.as_ref(), channel, policy);
                slow.set_fast_forward(false);
                let slow = slow.run_batch(&requests);
                assert_eq!(
                    fast, slow,
                    "{name}/{label}: fast-forward changed an outcome"
                );
                let oracle =
                    run_requests_reference_channel(sys.as_ref(), &requests, channel, policy);
                assert_eq!(fast, oracle, "{name}/{label}: slab ≠ reference oracle");
                for shards in shard_counts() {
                    let sharded = run_requests_sharded_channel(
                        sys.as_ref(),
                        &requests,
                        shards,
                        channel,
                        policy,
                    );
                    assert_eq!(fast, sharded, "{name}/{label}: {shards} shards diverged");
                }
                // Aggregates: the observed slab engine's hub must match a
                // hub folded from the reference completions plus the
                // direct walker's recorded spans, component for component.
                let (observed, slab_hub) =
                    run_requests_channel_observed(sys.as_ref(), &requests, channel, policy);
                assert_eq!(
                    fast, observed,
                    "{name}/{label}: observation perturbed outcomes"
                );
                let folded = walker_hub(sys.as_ref(), &oracle, channel, policy, label);
                assert_hubs_agree(&slab_hub, &folded, &format!("{name}/{label}"));
            }
        }
    }
}

/// The dynamic-broadcast leg: striped groups whose channels are churning
/// versioned servers (20 % of each slice touched per cycle) still agree
/// across slab, reference, every shard count, and the direct versioned
/// walker, under burst loss plus outages.
#[test]
fn churning_striped_groups_agree_across_drivers() {
    let (ds, pool) = DatasetBuilder::new(48, 0x6C48)
        .build_with_absent_pool(8)
        .unwrap();
    let params = Params::paper();
    let config = GroupConfig::new(3, 199).unwrap();
    let spec = UpdateSpec {
        rate: 0.20,
        seed: 0xABC7,
        horizon_cycles: 16,
    };
    let channel = ChannelModel::burst(BurstModel::new(0.05, 0.25, 0.0, 1.0, 0x717))
        .with_outages(OutageSchedule::new(2_000, 200, 0x0A7));
    let policy = RetryPolicy::bounded(24)
        .with_backoff_cap(8)
        .with_jitter(0x1EE7);
    let servers: Vec<Box<dyn DynSystem>> = vec![
        Box::new(
            StripedVersionedServer::build(&bda_core::FlatScheme, &ds, &params, config, spec)
                .unwrap(),
        ),
        Box::new(
            StripedVersionedServer::build(&bda_hash::HashScheme::new(), &ds, &params, config, spec)
                .unwrap(),
        ),
        Box::new(
            StripedVersionedServer::build(
                &bda_signature::SimpleSignatureScheme::new(),
                &ds,
                &params,
                config,
                spec,
            )
            .unwrap(),
        ),
    ];
    for server in servers {
        let name = server.scheme_name();
        let requests = request_mix(&ds, &pool, 48, 8 * server.cycle_len());
        let slab = bda_sim::run_requests_channel(server.as_ref(), &requests, channel, policy);
        let oracle = run_requests_reference_channel(server.as_ref(), &requests, channel, policy);
        assert_eq!(slab, oracle, "{name}: slab ≠ reference under striped churn");
        for shards in shard_counts() {
            let sharded =
                run_requests_sharded_channel(server.as_ref(), &requests, shards, channel, policy);
            assert_eq!(
                slab, sharded,
                "{name}: {shards} shards diverged under striped churn"
            );
        }
        let mut skews = 0u64;
        for (i, r) in slab.iter().enumerate() {
            let direct = server.probe_with_channel(r.key, r.arrival, channel, policy);
            assert_eq!(
                r.outcome, direct,
                "{name}: engine vs versioned walker diverged at req {i}"
            );
            assert!(!r.outcome.aborted, "{name}: aborted at req {i}");
            skews += u64::from(r.outcome.version_skews);
        }
        assert!(skews > 0, "{name}: 20% churn must produce version skews");
    }
}
