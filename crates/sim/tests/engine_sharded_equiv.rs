//! Shard-count invariance suite — the contract of the sharded engine.
//!
//! For every shard count in {1, 2, 3, 7, #cores} and every scheme family,
//! `run_requests_sharded` must be **bit-identical** to the single-threaded
//! engine: per-request outcomes, the shard-invariant `EngineStats`
//! projection, the merged retry-depth histogram, and every merged
//! percentile — across a lossless channel, a 15 % error-prone channel
//! with bounded retries, and a 20 %-churn dynamic broadcast program.
//!
//! The property half drops the round-robin assumption entirely: an
//! *arbitrary* request→shard assignment, merged back to request order,
//! reproduces the unsharded result — merge correctness depends only on
//! per-request independence, not on how the batch was cut.

use bda_core::{Dataset, DynSystem, ErrorModel, Key, Params, RetryPolicy, Scheme, Ticks};
use bda_datagen::DatasetBuilder;
use bda_sim::{
    run_requests_observed, run_requests_partitioned, run_requests_sharded_observed,
    run_requests_sharded_with_faults, run_requests_with_faults, Engine, ShardedEngine, UpdateSpec,
    VersionedServer,
};
use proptest::prelude::*;

/// 15 % loss — the suite's error-prone channel.
const LOSS: f64 = 0.15;
/// 20 % of records touched per cycle — the suite's churn rate.
const CHURN: f64 = 0.20;

/// The shard counts the issue pins: 1, 2, 3, 7 and however many cores the
/// host actually has (deduplicated — on a small host some coincide).
fn shard_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut counts = vec![1, 2, 3, 7, cores];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Frozen builds of all eight scheme families.
fn all_frozen(ds: &Dataset, p: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(bda_core::FlatScheme.build(ds, p).unwrap()),
        Box::new(bda_btree::OneMScheme::new().build(ds, p).unwrap()),
        Box::new(bda_btree::DistributedScheme::new().build(ds, p).unwrap()),
        Box::new(bda_hash::HashScheme::new().build(ds, p).unwrap()),
        Box::new(
            bda_signature::SimpleSignatureScheme::new()
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::IntegratedSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::MultiLevelSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(bda_hybrid::HybridScheme::new().build(ds, p).unwrap()),
    ]
}

/// Build a churned [`VersionedServer`] for every scheme family and hand
/// each one (type-erased, with the air span covering all its epochs) to
/// `f`.
fn with_all_versioned(
    ds: &Dataset,
    p: &Params,
    spec: UpdateSpec,
    f: &mut dyn FnMut(&dyn DynSystem, Ticks),
) {
    fn one<Sch: Scheme>(
        scheme: Sch,
        ds: &Dataset,
        p: &Params,
        spec: UpdateSpec,
        f: &mut dyn FnMut(&dyn DynSystem, Ticks),
    ) where
        <Sch::System as bda_core::System>::Machine: 'static,
    {
        let server = VersionedServer::build(&scheme, ds, p, spec).unwrap();
        let span =
            server.timeline().epochs().last().map_or(0, |e| e.start) + 4 * server.cycle_len();
        f(&server, span);
    }
    one(bda_core::FlatScheme, ds, p, spec, f);
    one(bda_btree::OneMScheme::new(), ds, p, spec, f);
    one(bda_btree::DistributedScheme::new(), ds, p, spec, f);
    one(bda_hash::HashScheme::new(), ds, p, spec, f);
    one(bda_signature::SimpleSignatureScheme::new(), ds, p, spec, f);
    one(
        bda_signature::IntegratedSignatureScheme::new(8),
        ds,
        p,
        spec,
        f,
    );
    one(
        bda_signature::MultiLevelSignatureScheme::new(8),
        ds,
        p,
        spec,
        f,
    );
    one(bda_hybrid::HybridScheme::new(), ds, p, spec, f);
}

/// Deterministic request mix spreading arrivals over `span` bytes of air
/// time, present and absent keys interleaved, unsorted.
fn request_mix(ds: &Dataset, pool: &[Key], n: usize, span: Ticks) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..n)
        .map(|i| {
            let t = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            let key = if i % 6 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 37) % keys.len()]
            };
            (t % span.max(1), key)
        })
        .collect()
}

/// The fault modes the matrix sweeps: lossless with unbounded retries,
/// and 15 % loss with a bounded (2-retry) policy so abandonment paths are
/// exercised too.
fn fault_modes() -> [(ErrorModel, RetryPolicy); 2] {
    [
        (ErrorModel::NONE, RetryPolicy::UNBOUNDED),
        (ErrorModel::new(LOSS, 0xFA57), RetryPolicy::bounded(2)),
    ]
}

/// Outcomes and the shard-invariant stats projection are bit-identical
/// for every shard count, on all eight frozen schemes, lossless and at
/// 15 % loss with bounded retries.
#[test]
fn outcomes_and_stats_invariant_across_shard_counts() {
    let (ds, pool) = DatasetBuilder::new(60, 0x5A4D)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    for (errors, policy) in fault_modes() {
        for sys in all_frozen(&ds, &params) {
            let requests = request_mix(&ds, &pool, 90, 16 * sys.cycle_len());
            let mut single = Engine::with_faults(sys.as_ref(), errors, policy);
            let baseline = single.run_batch(&requests);
            for shards in shard_counts() {
                let mut engine = ShardedEngine::with_faults(sys.as_ref(), shards, errors, policy);
                let merged = engine.run_batch(&requests);
                assert_eq!(
                    baseline,
                    merged,
                    "{} outcomes drifted at {shards} shards (loss={})",
                    sys.scheme_name(),
                    errors.loss_prob
                );
                assert_eq!(
                    single.stats().outcome_counters(),
                    engine.stats().outcome_counters(),
                    "{} stats drifted at {shards} shards",
                    sys.scheme_name()
                );
            }
        }
    }
}

/// The same invariance holds on a dynamic broadcast program at 20 %
/// churn — stale restarts and version skews included — with and without
/// loss on top.
#[test]
fn churned_programs_are_shard_invariant() {
    let (ds, pool) = DatasetBuilder::new(60, 0x0C0DE)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let spec = UpdateSpec {
        rate: CHURN,
        seed: 0xBEEF,
        horizon_cycles: 16,
    };
    for (errors, policy) in fault_modes() {
        with_all_versioned(&ds, &params, spec, &mut |server, span| {
            let requests = request_mix(&ds, &pool, 70, span);
            let baseline = run_requests_with_faults(server, &requests, errors, policy);
            let churn_engaged = baseline.iter().any(|r| r.outcome.version_skews > 0);
            assert!(
                churn_engaged,
                "{}: 20% churn must exercise the stale machinery",
                server.scheme_name()
            );
            for shards in shard_counts() {
                let merged =
                    run_requests_sharded_with_faults(server, &requests, shards, errors, policy);
                assert_eq!(
                    baseline,
                    merged,
                    "{} churn outcomes drifted at {shards} shards (loss={})",
                    server.scheme_name(),
                    errors.loss_prob
                );
            }
        });
    }
}

/// Merged observability is exact: per-shard hubs folded in shard order
/// reproduce the single-engine histograms bin for bin — so retry-depth
/// distributions, phase spans, completion counters and every percentile
/// match bit for bit. (Occupancy gauges are scheduler-shaped and
/// deliberately out of scope.)
#[test]
fn merged_metrics_histograms_and_percentiles_are_bit_identical() {
    let (ds, pool) = DatasetBuilder::new(60, 0x0B5)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let errors = ErrorModel::new(LOSS, 0x717);
    let policy = RetryPolicy::bounded(3);
    for sys in all_frozen(&ds, &params) {
        let requests = request_mix(&ds, &pool, 90, 16 * sys.cycle_len());
        let (baseline, hub) = run_requests_observed(sys.as_ref(), &requests, errors, policy);
        for shards in shard_counts() {
            let (merged, sharded_hub) =
                run_requests_sharded_observed(sys.as_ref(), &requests, shards, errors, policy);
            assert_eq!(baseline, merged, "{}", sys.scheme_name());
            let name = sys.scheme_name();
            assert_eq!(
                hub.spans, sharded_hub.spans,
                "{name} spans, {shards} shards"
            );
            assert_eq!(
                hub.access, sharded_hub.access,
                "{name} access histogram, {shards} shards"
            );
            assert_eq!(
                hub.tuning, sharded_hub.tuning,
                "{name} tuning histogram, {shards} shards"
            );
            assert_eq!(
                hub.retry_depth, sharded_hub.retry_depth,
                "{name} retry-depth histogram, {shards} shards"
            );
            assert_eq!(hub.completed, sharded_hub.completed);
            assert_eq!(hub.found, sharded_hub.found);
            assert_eq!(hub.abandoned, sharded_hub.abandoned);
            for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
                assert_eq!(
                    hub.access.quantile(q),
                    sharded_hub.access.quantile(q),
                    "{name} access p{q}, {shards} shards"
                );
                assert_eq!(
                    hub.tuning.quantile(q),
                    sharded_hub.tuning.quantile(q),
                    "{name} tuning p{q}, {shards} shards"
                );
                assert_eq!(
                    hub.retry_depth.quantile(q),
                    sharded_hub.retry_depth.quantile(q),
                    "{name} retry p{q}, {shards} shards"
                );
            }
        }
    }
}

/// An arbitrary batch plus an arbitrary request→shard assignment: the
/// strategy yields unsorted collision-heavy arrivals, present/absent key
/// mixes, and shard ids drawn from a range wider than typical core counts
/// (so empty shards and singleton shards both occur).
fn arb_partitioned_batch() -> impl Strategy<Value = (Vec<(Ticks, Key)>, Vec<usize>, u64)> {
    (
        proptest::collection::vec(
            (
                0u64..5_000,
                any::<proptest::sample::Index>(),
                any::<bool>(),
                0usize..12,
            ),
            1..100,
        ),
        any::<u64>(),
    )
        .prop_map(|(raw, seed)| {
            let (ds, pool) = DatasetBuilder::new(40, seed)
                .build_with_absent_pool(8)
                .expect("dataset");
            let keys: Vec<Key> = ds.keys().collect();
            let mut reqs = Vec::with_capacity(raw.len());
            let mut assignment = Vec::with_capacity(raw.len());
            for (t, idx, present, shard) in raw {
                let key = if present {
                    keys[idx.index(keys.len())]
                } else {
                    pool[idx.index(pool.len())]
                };
                reqs.push((t, key));
                assignment.push(shard);
            }
            (reqs, assignment, seed)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any partition of a request batch, merged back to request order,
    /// equals the unsharded run — lossless and under 15 % loss with
    /// bounded retries.
    #[test]
    fn arbitrary_partition_merges_to_unsharded_result(
        (requests, assignment, seed) in arb_partitioned_batch()
    ) {
        let (ds, _) = DatasetBuilder::new(40, seed)
            .build_with_absent_pool(8)
            .expect("dataset");
        let params = Params::paper();
        let systems: Vec<Box<dyn DynSystem>> = vec![
            Box::new(bda_hash::HashScheme::new().build(&ds, &params).unwrap()),
            Box::new(
                bda_btree::DistributedScheme::new()
                    .build(&ds, &params)
                    .unwrap(),
            ),
        ];
        for sys in &systems {
            for (errors, policy) in fault_modes() {
                let unsharded =
                    run_requests_with_faults(sys.as_ref(), &requests, errors, policy);
                let merged = run_requests_partitioned(
                    sys.as_ref(),
                    &requests,
                    &assignment,
                    errors,
                    policy,
                );
                prop_assert_eq!(
                    &unsharded,
                    &merged,
                    "{} (loss={})",
                    sys.scheme_name(),
                    errors.loss_prob
                );
            }
        }
    }
}
