//! Event-budget smoke: the analytical fast-forward layer's throughput
//! repair rests on one invariant — a scan-heavy query costs O(1)
//! scheduler events, not O(cycle). This pins `events / requests` under a
//! small per-scheme constant so an accidental slow-path regression (a
//! machine that stops fast-forwarding, a slot that drops the setting)
//! fails fast instead of quietly costing 100× in the benches.
//!
//! Budgets are deliberately loose versus the measured ratios (about 2×
//! headroom) but *tiny* versus the slow path: flat at 320 records burns
//! ~480 events per request bucket-by-bucket; the budget is 4.

use bda_core::{Dataset, DynSystem, ErrorModel, Key, Params, RetryPolicy, Scheme};
use bda_datagen::DatasetBuilder;
use bda_sim::Engine;

/// (scheme, max scheduler events per completed request, lossless).
fn budgeted_systems(ds: &Dataset, p: &Params) -> Vec<(Box<dyn DynSystem>, f64)> {
    vec![
        // One initial probe, one fast-forwarded landing, one finish.
        (Box::new(bda_core::FlatScheme.build(ds, p).unwrap()), 4.0),
        (
            Box::new(
                bda_signature::SimpleSignatureScheme::new()
                    .build(ds, p)
                    .unwrap(),
            ),
            6.0,
        ),
        (
            Box::new(
                bda_signature::IntegratedSignatureScheme::new(8)
                    .build(ds, p)
                    .unwrap(),
            ),
            6.0,
        ),
        (
            Box::new(
                bda_signature::MultiLevelSignatureScheme::new(8)
                    .build(ds, p)
                    .unwrap(),
            ),
            8.0,
        ),
    ]
}

fn request_mix(ds: &Dataset, pool: &[Key], n: usize, span: u64) -> Vec<(u64, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..n)
        .map(|i| {
            let t = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            let key = if i % 6 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 37) % keys.len()]
            };
            (t % span.max(1), key)
        })
        .collect()
}

#[test]
fn scan_heavy_schemes_stay_within_their_event_budget() {
    let (ds, pool) = DatasetBuilder::new(320, 0xB0D6)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    for (sys, budget) in budgeted_systems(&ds, &params) {
        let requests = request_mix(&ds, &pool, 200, 8 * sys.cycle_len());
        let mut engine =
            Engine::with_faults(sys.as_ref(), ErrorModel::NONE, RetryPolicy::UNBOUNDED);
        let done = engine.run_batch(&requests);
        assert_eq!(done.len(), requests.len());
        let ratio = engine.stats().events as f64 / requests.len() as f64;
        assert!(
            ratio <= budget,
            "{}: {ratio:.2} events/request exceeds the budget of {budget}",
            sys.scheme_name()
        );
        println!(
            "{:<22} {ratio:.2} events/request (budget {budget})",
            sys.scheme_name()
        );
    }
}

/// Corruption legitimately costs extra wake-ups (each retry re-enters the
/// walk), but the budget must still be O(retries), not O(cycle).
#[test]
fn lossy_event_budget_scales_with_retries_not_cycle_length() {
    let (ds, pool) = DatasetBuilder::new(320, 0xB0D7)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    for (sys, budget) in budgeted_systems(&ds, &params) {
        let requests = request_mix(&ds, &pool, 200, 8 * sys.cycle_len());
        let mut engine = Engine::with_faults(
            sys.as_ref(),
            ErrorModel::new(0.15, 0xFA57),
            RetryPolicy::bounded(2),
        );
        let done = engine.run_batch(&requests);
        let retries: u64 = done.iter().map(|r| u64::from(r.outcome.retries)).sum();
        let events = engine.stats().events as f64;
        let n = requests.len() as f64;
        // Every retry may cost a handful of extra events (re-align, re-scan
        // to the next decision point); everything else obeys the lossless
        // budget.
        let allowed = budget * n + 8.0 * retries as f64;
        assert!(
            events <= allowed,
            "{}: {events} events > {allowed} ({n} requests, {retries} retries)",
            sys.scheme_name()
        );
    }
}
