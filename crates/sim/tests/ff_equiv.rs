//! Fast-forward differential suite.
//!
//! The analytical fast-forward layer collapses a scan-heavy walk's
//! O(cycle) wake-ups into O(1) scheduler events by computing the next
//! *interesting* bucket directly from the immutable program. These tests
//! pin the contract from the simulator's side:
//!
//! 1. **Triple equivalence**: the fast-forwarding slab engine, the
//!    bucket-by-bucket slab engine, and the naive reference oracle agree
//!    *bit-identically* — outcome, access time, tuning time, probe count,
//!    false drops — on every scheme, lossless and lossy.
//! 2. **Event collapse**: with fast-forward on, the scan-heavy schemes
//!    (flat, signature family) process dramatically fewer scheduler
//!    events for the same work; it is the mechanism behind the
//!    requests-per-second repair, so it is asserted, not just measured.
//! 3. **No skipped faults**: fault instants are a pure function of the
//!    bucket instant and the seed, so a jump that lands one bucket late
//!    would silently swallow a corruption or a version-skew event.
//!    Near cycle boundaries, near `Ticks::MAX`, and under heavy loss the
//!    degradation counters must tie out exactly.
//!
//! (The golden-corpus conformance test in `bda-bench` runs the same
//! engine entry points against 16 frozen TSVs, so the corpus pins the
//! fast-forward path too — no separate leg is needed here.)

use bda_core::{Dataset, DynSystem, ErrorModel, Key, Params, RetryPolicy, Scheme, Ticks};
use bda_datagen::DatasetBuilder;
use bda_sim::engine::reference::run_requests_reference_with_faults;
use bda_sim::{CompletedRequest, Engine, UpdateSpec, VersionedServer};

/// Every scheme family in the repo, including the composite hybrid.
fn all_systems(ds: &Dataset, p: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(bda_core::FlatScheme.build(ds, p).unwrap()),
        Box::new(bda_btree::OneMScheme::new().build(ds, p).unwrap()),
        Box::new(bda_btree::DistributedScheme::new().build(ds, p).unwrap()),
        Box::new(bda_hash::HashScheme::new().build(ds, p).unwrap()),
        Box::new(
            bda_signature::SimpleSignatureScheme::new()
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::IntegratedSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::MultiLevelSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(bda_hybrid::HybridScheme::new().build(ds, p).unwrap()),
    ]
}

/// Deterministic request mix over `span` ticks starting at `base`:
/// unsorted arrivals with collisions, every sixth key absent.
fn request_mix(
    ds: &Dataset,
    pool: &[Key],
    n: usize,
    base: Ticks,
    span: Ticks,
) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..n)
        .map(|i| {
            let t = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            let key = if i % 6 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 37) % keys.len()]
            };
            (base + t % span.max(1), key)
        })
        .collect()
}

/// Run a batch on a slab engine with fast-forward pinned on or off,
/// returning the outcomes and the number of scheduler events consumed.
fn run_with_ff(
    sys: &dyn DynSystem,
    requests: &[(Ticks, Key)],
    errors: ErrorModel,
    policy: RetryPolicy,
    ff: bool,
) -> (Vec<CompletedRequest>, u64) {
    let mut engine = Engine::with_faults(sys, errors, policy);
    engine.set_fast_forward(ff);
    let done = engine.run_batch(requests);
    (done, engine.stats().events)
}

/// The fast-forwarding engine, the bucket-by-bucket engine, and the naive
/// reference oracle produce bit-identical outcomes (found/abandoned,
/// access, tuning, probes, false drops, retries) on all eight schemes,
/// lossless and at 15 % loss with an abandoning retry policy — and the
/// fast path never consumes *more* scheduler events than the slow path.
#[test]
fn fast_forward_engine_matches_slow_engine_and_reference_oracle() {
    let (ds, pool) = DatasetBuilder::new(60, 0x0FF1)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    for (errors, policy) in [
        (ErrorModel::NONE, RetryPolicy::UNBOUNDED),
        (ErrorModel::new(0.15, 0xFA57), RetryPolicy::bounded(2)),
    ] {
        for sys in all_systems(&ds, &params) {
            let requests = request_mix(&ds, &pool, 72, 0, 8 * sys.cycle_len());
            let (fast, fast_events) = run_with_ff(sys.as_ref(), &requests, errors, policy, true);
            let (slow, slow_events) = run_with_ff(sys.as_ref(), &requests, errors, policy, false);
            let oracle =
                run_requests_reference_with_faults(sys.as_ref(), &requests, errors, policy);
            let name = sys.scheme_name();
            assert_eq!(fast, slow, "{name}: fast-forward changed an outcome");
            assert_eq!(slow, oracle, "{name}: slab engine ≠ reference oracle");
            assert!(
                fast_events <= slow_events,
                "{name}: fast-forward added events ({fast_events} > {slow_events})"
            );
        }
    }
}

/// The point of the layer: scan-heavy schemes collapse from O(cycle)
/// wake-ups per request to a small constant. On a lossless channel the
/// fast engine must spend well under a tenth of the slow engine's events
/// on flat and the whole signature family.
#[test]
fn fast_forward_collapses_events_on_scan_heavy_schemes() {
    // Large enough that O(cycle) vs O(1) dominates the constant factors:
    // integrated/multilevel already doze whole frames bucket-by-bucket, so
    // their slow-path event count grows with the *frame* count, not the
    // bucket count.
    let (ds, pool) = DatasetBuilder::new(320, 0x0FF2)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    for sys in all_systems(&ds, &params) {
        let name = sys.scheme_name();
        let scan_heavy = matches!(
            name,
            "flat" | "simple-signature" | "integrated-signature" | "multilevel-signature"
        );
        if !scan_heavy {
            continue;
        }
        let requests = request_mix(&ds, &pool, 72, 0, 8 * sys.cycle_len());
        let (fast, fast_events) = run_with_ff(
            sys.as_ref(),
            &requests,
            ErrorModel::NONE,
            RetryPolicy::UNBOUNDED,
            true,
        );
        let (slow, slow_events) = run_with_ff(
            sys.as_ref(),
            &requests,
            ErrorModel::NONE,
            RetryPolicy::UNBOUNDED,
            false,
        );
        assert_eq!(fast, slow, "{name}: outcomes diverged");
        assert!(
            fast_events * 10 <= slow_events,
            "{name}: expected ≥10× event collapse, got {slow_events} → {fast_events}"
        );
    }
}

/// Fault instants are a pure function of (bucket instant, seed): a jump
/// that mis-lands by even one bucket shifts which reads are corrupted and
/// the retry counters betray it. Drive every scheme at 30 % loss with
/// arrivals packed around cycle boundaries and assert the degradation
/// counters — retries, false drops, abandonments — tie out exactly.
#[test]
fn fast_forward_never_skips_a_corruption_event() {
    let (ds, pool) = DatasetBuilder::new(48, 0x0FF3)
        .build_with_absent_pool(8)
        .unwrap();
    let params = Params::paper();
    let errors = ErrorModel::new(0.30, 0xC0DE);
    let policy = RetryPolicy::bounded(3);
    for sys in all_systems(&ds, &params) {
        let cycle = sys.cycle_len();
        // Arrivals hugging k·cycle from both sides, plus exact boundaries.
        let mut requests: Vec<(Ticks, Key)> = Vec::new();
        let keys: Vec<Key> = ds.keys().collect();
        for k in 1..9u64 {
            for d in [0i64, 1, -1, 2, -2, 7, -7] {
                let t = (k * cycle).saturating_add_signed(d);
                let i = requests.len();
                let key = if i % 5 == 0 {
                    pool[i % pool.len()]
                } else {
                    keys[(i * 37) % keys.len()]
                };
                requests.push((t, key));
            }
        }
        let (fast, _) = run_with_ff(sys.as_ref(), &requests, errors, policy, true);
        let (slow, _) = run_with_ff(sys.as_ref(), &requests, errors, policy, false);
        let name = sys.scheme_name();
        assert_eq!(fast, slow, "{name}: boundary arrivals diverged under loss");
        let retries: u32 = slow.iter().map(|r| r.outcome.retries).sum();
        assert!(retries > 0, "{name}: the 30% channel must actually corrupt");
    }
}

/// Clock-edge safety: with arrivals a few dozen cycles below `Ticks::MAX`
/// the walker must disengage fast-forward rather than overflow, and the
/// outcomes still match the bucket-by-bucket engine exactly.
#[test]
fn fast_forward_is_exact_near_ticks_max() {
    let (ds, pool) = DatasetBuilder::new(48, 0x0FF4)
        .build_with_absent_pool(8)
        .unwrap();
    let params = Params::paper();
    let errors = ErrorModel::new(0.15, 0xFA57);
    let policy = RetryPolicy::bounded(2);
    for sys in all_systems(&ds, &params) {
        let cycle = sys.cycle_len();
        let base = Ticks::MAX - 64 * cycle;
        let requests = request_mix(&ds, &pool, 48, base, 4 * cycle);
        let (fast, _) = run_with_ff(sys.as_ref(), &requests, errors, policy, true);
        let (slow, _) = run_with_ff(sys.as_ref(), &requests, errors, policy, false);
        assert_eq!(
            fast,
            slow,
            "{}: outcomes diverged near Ticks::MAX",
            sys.scheme_name()
        );
    }
}

/// Version-skew events on a churning program are never skipped: versioned
/// walks stay on the bucket-by-bucket path (fast-forward only reasons
/// about immutable programs), so the skew and stale-restart counters are
/// identical whether the engine's fast-forward switch is on or off.
#[test]
fn fast_forward_never_skips_a_version_skew_event() {
    let (ds, pool) = DatasetBuilder::new(48, 0x0FF5)
        .build_with_absent_pool(8)
        .unwrap();
    let params = Params::paper();
    let spec = UpdateSpec {
        rate: 0.20,
        seed: 0xABC7,
        horizon_cycles: 16,
    };
    let server = VersionedServer::build(&bda_core::FlatScheme, &ds, &params, spec).unwrap();
    let span = server.timeline().epochs().last().map_or(0, |e| e.start)
        + 4 * DynSystem::cycle_len(&server);
    let requests = request_mix(&ds, &pool, 72, 0, span);
    for errors in [ErrorModel::NONE, ErrorModel::new(0.10, 0x717)] {
        let policy = RetryPolicy::UNBOUNDED;
        let (fast, fast_events) = run_with_ff(&server, &requests, errors, policy, true);
        let (slow, slow_events) = run_with_ff(&server, &requests, errors, policy, false);
        assert_eq!(fast, slow, "churn outcomes diverged");
        assert_eq!(
            fast_events, slow_events,
            "versioned walks must not fast-forward at all"
        );
        let skews: u64 = slow
            .iter()
            .map(|r| u64::from(r.outcome.version_skews))
            .sum();
        assert!(skews > 0, "20% churn must produce version skews to protect");
    }
}
