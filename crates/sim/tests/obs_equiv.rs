//! Observability differential suite.
//!
//! Two keystone properties of the zero-overhead observability layer:
//!
//! 1. **No-op equivalence**: switching observation on must not perturb a
//!    single outcome — the observed engine, the plain engine, and the
//!    recorded direct walker are *bit-identical*, request by request, on
//!    every scheme, lossless and lossy, frozen and churning.
//! 2. **Exact span accounting**: the per-phase walk spans telescope —
//!    summed across phases they equal the measured access and tuning
//!    times exactly (not approximately), and phase counters tie out to
//!    the walker's own degradation counters (corrupt reads ↔ `Retry`
//!    spans, version skews ↔ `StaleRecovery` spans).

use bda_core::{Dataset, DynSystem, ErrorModel, Key, Params, Phase, RetryPolicy, Scheme, Ticks};
use bda_datagen::DatasetBuilder;
use bda_sim::{
    run_requests_observed, run_requests_with_faults, SimConfig, Simulator, UpdateSpec,
    VersionedServer,
};

/// Every scheme family in the repo, including the composite hybrid.
fn all_systems(ds: &Dataset, p: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(bda_core::FlatScheme.build(ds, p).unwrap()),
        Box::new(bda_btree::OneMScheme::new().build(ds, p).unwrap()),
        Box::new(bda_btree::DistributedScheme::new().build(ds, p).unwrap()),
        Box::new(bda_hash::HashScheme::new().build(ds, p).unwrap()),
        Box::new(
            bda_signature::SimpleSignatureScheme::new()
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::IntegratedSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::MultiLevelSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(bda_hybrid::HybridScheme::new().build(ds, p).unwrap()),
    ]
}

/// A deterministic request mix: unsorted arrivals with collisions, present
/// and absent keys interleaved.
fn request_mix(ds: &Dataset, pool: &[Key], n: usize, span: Ticks) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..n)
        .map(|i| {
            let t = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            let key = if i % 6 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 37) % keys.len()]
            };
            (t % span.max(1), key)
        })
        .collect()
}

/// Observation never perturbs an outcome, and the spans account for every
/// tick, on all eight schemes — lossless and at 15 % loss with a bounded
/// (abandoning) policy.
#[test]
fn spans_account_every_tick_on_every_scheme() {
    let (ds, pool) = DatasetBuilder::new(60, 0x0B5E)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    for (errors, policy) in [
        (ErrorModel::NONE, RetryPolicy::UNBOUNDED),
        (ErrorModel::new(0.15, 0xFA57), RetryPolicy::bounded(2)),
    ] {
        for sys in all_systems(&ds, &params) {
            let requests = request_mix(&ds, &pool, 90, 8 * sys.cycle_len());
            let plain = run_requests_with_faults(sys.as_ref(), &requests, errors, policy);
            let (observed, hub) = run_requests_observed(sys.as_ref(), &requests, errors, policy);
            assert_eq!(
                plain,
                observed,
                "{}: observation perturbed outcomes",
                sys.scheme_name()
            );

            let (access, tuning, retries) = plain.iter().fold((0u64, 0u64, 0u64), |acc, r| {
                (
                    acc.0 + r.outcome.access,
                    acc.1 + r.outcome.tuning,
                    acc.2 + u64::from(r.outcome.retries),
                )
            });
            assert_eq!(hub.completed, requests.len() as u64);
            // Exactness: the telescoping sums leave no tick unattributed.
            assert_eq!(
                hub.spans.total_access(),
                access,
                "{}: access ticks leaked from the spans",
                sys.scheme_name()
            );
            assert_eq!(
                hub.spans.total_tuning(),
                tuning,
                "{}: tuning ticks leaked from the spans",
                sys.scheme_name()
            );
            // Counter tie-out: every corrupt read is exactly one Retry span,
            // dozing costs access time but never tuning time, and a frozen
            // channel never enters stale recovery.
            assert_eq!(
                hub.spans.get(Phase::Retry).count,
                retries,
                "{}: Retry spans ≠ corrupt reads",
                sys.scheme_name()
            );
            assert_eq!(hub.spans.get(Phase::Doze).tuning, 0, "dozing is free air");
            assert_eq!(hub.spans.get(Phase::StaleRecovery).count, 0);
            // The walker reads exactly one bucket per tune-in — unless that
            // very first read was corrupted, which takes Retry precedence.
            let initial = hub.spans.get(Phase::InitialProbe).count;
            if errors.loss_prob == 0.0 {
                assert_eq!(
                    initial,
                    requests.len() as u64,
                    "{}: one initial probe per request",
                    sys.scheme_name()
                );
            } else {
                assert!(initial <= requests.len() as u64);
                assert!(initial > 0, "{}: no tune-in survived", sys.scheme_name());
            }
        }
    }
}

/// Same properties under 20 % churn on a [`VersionedServer`]: version
/// skews surface as `StaleRecovery` spans and the accounting stays exact
/// across program switches and respawns.
#[test]
fn dynamic_spans_attribute_version_skew_to_stale_recovery() {
    let (ds, pool) = DatasetBuilder::new(60, 0x5EED)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let spec = UpdateSpec {
        rate: 0.20,
        seed: 0xABC7,
        horizon_cycles: 16,
    };
    fn check<Sch: Scheme>(scheme: Sch, ds: &Dataset, pool: &[Key], p: &Params, spec: UpdateSpec)
    where
        <Sch::System as bda_core::System>::Machine: 'static,
    {
        let server = VersionedServer::build(&scheme, ds, p, spec).unwrap();
        let span = server.timeline().epochs().last().map_or(0, |e| e.start)
            + 4 * DynSystem::cycle_len(&server);
        let requests = request_mix(ds, pool, 80, span);
        for errors in [ErrorModel::NONE, ErrorModel::new(0.10, 0x717)] {
            let policy = RetryPolicy::UNBOUNDED;
            let plain = run_requests_with_faults(&server, &requests, errors, policy);
            let (observed, hub) = run_requests_observed(&server, &requests, errors, policy);
            let name = DynSystem::scheme_name(&server);
            assert_eq!(plain, observed, "{name}: observation perturbed outcomes");
            let (access, tuning, skews) = plain.iter().fold((0u64, 0u64, 0u64), |acc, r| {
                (
                    acc.0 + r.outcome.access,
                    acc.1 + r.outcome.tuning,
                    acc.2 + u64::from(r.outcome.version_skews),
                )
            });
            assert_eq!(hub.spans.total_access(), access, "{name}: access leaked");
            assert_eq!(hub.spans.total_tuning(), tuning, "{name}: tuning leaked");
            assert_eq!(
                hub.spans.get(Phase::StaleRecovery).count,
                skews,
                "{name}: StaleRecovery spans ≠ version skews"
            );
            assert!(
                skews > 0,
                "{name}: 20% churn must produce version skews to attribute"
            );
        }
    }
    check(bda_core::FlatScheme, &ds, &pool, &params, spec);
    check(bda_btree::OneMScheme::new(), &ds, &pool, &params, spec);
    check(
        bda_btree::DistributedScheme::new(),
        &ds,
        &pool,
        &params,
        spec,
    );
    check(bda_hash::HashScheme::new(), &ds, &pool, &params, spec);
    check(
        bda_signature::SimpleSignatureScheme::new(),
        &ds,
        &pool,
        &params,
        spec,
    );
    check(
        bda_signature::IntegratedSignatureScheme::new(8),
        &ds,
        &pool,
        &params,
        spec,
    );
    check(
        bda_signature::MultiLevelSignatureScheme::new(8),
        &ds,
        &pool,
        &params,
        spec,
    );
    check(bda_hybrid::HybridScheme::new(), &ds, &pool, &params, spec);
}

/// Index-navigating schemes split their tuning time between the index
/// traversal and data-read phases; the flat broadcast (no index) never
/// reports an `IndexTraversal` span.
#[test]
fn phase_mix_reflects_each_schemes_structure() {
    let ds = DatasetBuilder::new(200, 0x111).build().unwrap();
    let params = Params::paper();
    for sys in all_systems(&ds, &params) {
        let requests = request_mix(&ds, &[Key(1)], 60, 8 * sys.cycle_len());
        let (_, hub) = run_requests_observed(
            sys.as_ref(),
            &requests,
            ErrorModel::NONE,
            RetryPolicy::UNBOUNDED,
        );
        let idx = hub.spans.get(Phase::IndexTraversal);
        let name = sys.scheme_name();
        if name == "flat" {
            assert_eq!(idx.count, 0, "flat broadcast has no index to traverse");
        } else {
            assert!(
                idx.count > 0,
                "{name}: indexed scheme never probed its index"
            );
            assert!(
                hub.spans.get(Phase::Doze).access > 0,
                "{name}: selective tuning must doze"
            );
        }
    }
}

/// Analytical fast-forward is invisible to the observability layer: on
/// every scheme — lossless, 15 % loss with an abandoning policy, and 20 %
/// churn on a versioned server — the fast-forwarded engine, the
/// bucket-by-bucket engine and the plain (unobserved) engine agree on
/// every outcome, and the per-phase span sums (including `Doze` tick
/// totals for the skipped buckets) are bit-identical.
#[test]
fn fast_forwarded_spans_match_bucket_by_bucket_on_every_scheme() {
    use bda_sim::Engine;
    let (ds, pool) = DatasetBuilder::new(60, 0x0FF0)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();

    fn observed_with_ff(
        sys: &dyn DynSystem,
        requests: &[(Ticks, Key)],
        errors: ErrorModel,
        policy: RetryPolicy,
        ff: bool,
    ) -> (
        Vec<bda_sim::CompletedRequest>,
        bda_obs::MetricsHub,
        bda_sim::EngineStats,
    ) {
        let mut engine = Engine::with_faults(sys, errors, policy);
        engine.set_fast_forward(ff);
        engine.enable_metrics();
        let done = engine.run_batch(requests);
        let hub = engine.take_metrics().expect("metrics were enabled");
        (done, hub, engine.stats())
    }

    fn check(sys: &dyn DynSystem, requests: &[(Ticks, Key)], errors: ErrorModel, what: &str) {
        let policy = RetryPolicy::bounded(2);
        let plain = run_requests_with_faults(sys, requests, errors, policy);
        let (fast, fast_hub, fast_stats) = observed_with_ff(sys, requests, errors, policy, true);
        let (slow, slow_hub, slow_stats) = observed_with_ff(sys, requests, errors, policy, false);
        let name = sys.scheme_name();
        assert_eq!(
            plain, fast,
            "{name} [{what}]: fast-forward changed outcomes"
        );
        assert_eq!(fast, slow, "{name} [{what}]: ff-on ≠ ff-off");
        assert_eq!(
            fast_hub.spans, slow_hub.spans,
            "{name} [{what}]: span sums diverged"
        );
        assert_eq!(
            fast_hub.spans.get(Phase::Doze),
            slow_hub.spans.get(Phase::Doze),
            "{name} [{what}]: Doze tick totals must attribute skipped buckets"
        );
        assert_eq!(fast_hub.completed, slow_hub.completed);
        assert!(
            fast_stats.events <= slow_stats.events,
            "{name} [{what}]: fast-forward must never add events"
        );
    }

    for sys in all_systems(&ds, &params) {
        let requests = request_mix(&ds, &pool, 80, 8 * sys.cycle_len());
        check(sys.as_ref(), &requests, ErrorModel::NONE, "lossless");
        check(
            sys.as_ref(),
            &requests,
            ErrorModel::new(0.15, 0xFA57),
            "15% loss",
        );
    }

    // 20 % churn: versioned walks rebuild their machine against the live
    // program and stay on the bucket-by-bucket path (fast-forward is only
    // valid over an immutable program) — the setting must still be safe to
    // apply and change nothing.
    let spec = UpdateSpec {
        rate: 0.20,
        seed: 0xABC7,
        horizon_cycles: 16,
    };
    let server = VersionedServer::build(&bda_core::FlatScheme, &ds, &params, spec).unwrap();
    let span = server.timeline().epochs().last().map_or(0, |e| e.start)
        + 4 * DynSystem::cycle_len(&server);
    let requests = request_mix(&ds, &pool, 80, span);
    check(&server, &requests, ErrorModel::NONE, "20% churn");
    check(
        &server,
        &requests,
        ErrorModel::new(0.10, 0x717),
        "20% churn + loss",
    );
}

/// Windowed (time-resolved) observation is as invisible as aggregate
/// observation: on every scheme, the windowed engine's outcomes are
/// bit-identical to the plain engine's, and its aggregate hub is
/// bit-identical to the aggregate-only observed run's — the time axis is
/// a pure refinement, never a perturbation.
#[test]
fn timeline_observed_runs_are_bit_identical_to_plain_runs() {
    use bda_sim::run_requests_channel_windowed;
    let (ds, pool) = DatasetBuilder::new(60, 0x0B5E)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    for (errors, policy) in [
        (ErrorModel::NONE, RetryPolicy::UNBOUNDED),
        (ErrorModel::new(0.15, 0xFA57), RetryPolicy::bounded(2)),
    ] {
        for sys in all_systems(&ds, &params) {
            let requests = request_mix(&ds, &pool, 90, 8 * sys.cycle_len());
            let plain = run_requests_with_faults(sys.as_ref(), &requests, errors, policy);
            let (aggregate_only, agg_hub) =
                run_requests_observed(sys.as_ref(), &requests, errors, policy);
            let (windowed, win_hub) = run_requests_channel_windowed(
                sys.as_ref(),
                &requests,
                errors.into(),
                policy,
                sys.cycle_len(),
            );
            let name = sys.scheme_name();
            assert_eq!(plain, windowed, "{name}: windowing perturbed outcomes");
            assert_eq!(aggregate_only, windowed);
            // The windowed hub, with its time series stripped, is the
            // aggregate hub — windowing refines, it never re-counts.
            let mut stripped = win_hub.clone();
            stripped.windows = None;
            assert_eq!(stripped, agg_hub, "{name}: windowing changed aggregates");
            assert!(win_hub.windows.is_some());
        }
    }
}

/// The simulator's observed run agrees with its plain run on a non-flat
/// scheme driven through the full accuracy-controlled testbed.
#[test]
fn simulator_observed_run_is_equivalent_on_an_indexed_scheme() {
    let ds = DatasetBuilder::new(150, 0x222).build().unwrap();
    let sys = bda_btree::DistributedScheme::new()
        .build(&ds, &Params::paper())
        .unwrap();
    let mut cfg = SimConfig::quick();
    cfg.min_rounds = 2;
    cfg.max_rounds = 2;
    let plain = Simulator::uniform(&sys, &ds, cfg).run();
    let (observed, hub) = Simulator::uniform(&sys, &ds, cfg).run_observed();
    assert_eq!(plain.access, observed.access);
    assert_eq!(plain.tuning, observed.tuning);
    assert_eq!(hub.completed, observed.requests);
    assert_eq!(u128::from(hub.spans.total_access()), hub.access.sum());
    assert_eq!(u128::from(hub.spans.total_tuning()), hub.tuning.sum());
    // The distributed index actually shows up in the phase mix.
    assert!(hub.spans.get(Phase::IndexTraversal).tuning > 0);
    assert!(hub.spans.get(Phase::DataRead).tuning > 0);
}
