//! Request-generator determinism under concurrent use.
//!
//! The sharded engine's bit-identical-merge guarantee starts upstream of
//! the engine: a [`RequestGenerator`] seeded identically must emit the
//! identical request stream no matter which thread consumes it, and no
//! matter how consumption is chunked (single requests, rounds, or a mix).
//! The generator is plain deterministic state — cloning it forks the
//! stream — so per-shard or per-worker copies can never drift.

use bda_core::{Key, Ticks};
use bda_datagen::{Arrivals, DatasetBuilder, Popularity, QueryWorkload};
use bda_sim::RequestGenerator;
use proptest::prelude::*;

/// A generator over a mixed present/absent workload, fully determined by
/// `seed`.
fn generator(seed: u64) -> RequestGenerator {
    let (ds, pool) = DatasetBuilder::new(80, seed ^ 0xD5)
        .build_with_absent_pool(12)
        .unwrap();
    let workload = QueryWorkload::new(&ds, pool, 0.8, Popularity::Uniform, seed ^ 0xABCD);
    RequestGenerator::new(Arrivals::new(500.0, seed), workload)
}

/// Same seed, different threads: every thread sees the same stream. Each
/// thread owns its own (identically seeded) generator — exactly how a
/// per-shard or per-worker harness would hold one — and all of them must
/// agree with the stream drawn on the main thread.
#[test]
fn same_seed_is_identical_across_consuming_threads() {
    const N: usize = 600;
    let baseline: Vec<(Ticks, Key)> = generator(0x9E37).round(N);
    let streams: Vec<Vec<(Ticks, Key)>> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| scope.spawn(|| generator(0x9E37).round(N)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("consumer thread panicked"))
            .collect()
    });
    for (i, stream) in streams.iter().enumerate() {
        assert_eq!(stream, &baseline, "thread {i} saw a different stream");
    }
}

/// Cloning forks the stream: a clone taken mid-stream replays exactly
/// what the original goes on to produce.
#[test]
fn clone_mid_stream_replays_the_original() {
    let mut original = generator(0x0EDB);
    original.round(123); // advance to an arbitrary interior point
    let mut fork = original.clone();
    let ahead = original.round(200);
    let replay = fork.round(200);
    assert_eq!(ahead, replay);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunked consumption is invariant: drawing the stream as arbitrary
    /// `round(k)` chunks interleaved with single `next_request` calls
    /// yields exactly the one-shot stream, for any seed.
    #[test]
    fn chunking_never_changes_the_stream(
        seed in any::<u64>(),
        chunks in proptest::collection::vec(0usize..40, 1..12),
    ) {
        let total: usize = chunks.iter().sum::<usize>() + chunks.len();
        let oneshot = generator(seed).round(total);
        let mut chunked = generator(seed);
        let mut drawn: Vec<(Ticks, Key)> = Vec::with_capacity(total);
        for k in &chunks {
            drawn.extend(chunked.round(*k));
            drawn.push(chunked.next_request());
        }
        prop_assert_eq!(drawn, oneshot);
    }
}
