//! Time-resolved telemetry differential suite.
//!
//! Keystone properties of the windowed [`bda_obs::TimeSeries`] layer:
//!
//! 1. **Aggregate exactness**: summed over all windows (plus the evicted
//!    fold), every per-window counter equals the end-of-run aggregates —
//!    `EngineStats`, the hub's histograms and the phase-span totals — on
//!    all eight schemes, lossless, lossy and churning. Not approximately:
//!    bit for bit.
//! 2. **No-op equivalence**: turning windowed observation on does not
//!    perturb a single outcome.
//! 3. **Shard invariance**: the merged per-window outcome counters of a
//!    sharded windowed run equal the single-engine ones window by
//!    window, for every shard count — including under tight retention,
//!    where merge-then-trim must agree with online trimming.
//! 4. **Pure sampling**: which requests a trace samples is a function of
//!    `(seed, request index)` only, so shard placement cannot change a
//!    trace.

use bda_core::{
    ChannelModel, Dataset, DynSystem, ErrorModel, Key, Params, RetryPolicy, Scheme, Ticks,
};
use bda_datagen::DatasetBuilder;
use bda_obs::{sample_indices, MetricsHub, WindowSpec, WindowStats};
use bda_sim::{
    run_requests_channel, run_requests_channel_windowed, Engine, ShardedEngine, UpdateSpec,
    VersionedServer,
};

fn all_systems(ds: &Dataset, p: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(bda_core::FlatScheme.build(ds, p).unwrap()),
        Box::new(bda_btree::OneMScheme::new().build(ds, p).unwrap()),
        Box::new(bda_btree::DistributedScheme::new().build(ds, p).unwrap()),
        Box::new(bda_hash::HashScheme::new().build(ds, p).unwrap()),
        Box::new(
            bda_signature::SimpleSignatureScheme::new()
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::IntegratedSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(
            bda_signature::MultiLevelSignatureScheme::new(8)
                .build(ds, p)
                .unwrap(),
        ),
        Box::new(bda_hybrid::HybridScheme::new().build(ds, p).unwrap()),
    ]
}

fn request_mix(ds: &Dataset, pool: &[Key], n: usize, span: Ticks) -> Vec<(Ticks, Key)> {
    let keys: Vec<Key> = ds.keys().collect();
    (0..n)
        .map(|i| {
            let t = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 13;
            let key = if i % 6 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 37) % keys.len()]
            };
            (t % span.max(1), key)
        })
        .collect()
}

/// Assert every window-sum invariant of a windowed hub against the plain
/// run it shadowed.
fn assert_totals_exact(
    name: &str,
    what: &str,
    hub: &MetricsHub,
    plain: &[bda_sim::CompletedRequest],
    stats: bda_sim::EngineStats,
) {
    let series = hub
        .windows
        .as_ref()
        .unwrap_or_else(|| panic!("{name} [{what}]: windowed run must carry a series"));
    let totals = series.totals();
    let ctx = format!("{name} [{what}]");
    assert_eq!(totals.completions, stats.completed, "{ctx}: completions");
    assert_eq!(totals.completions, hub.completed, "{ctx}: hub completed");
    assert_eq!(totals.found, hub.found, "{ctx}: found");
    assert_eq!(totals.abandoned, stats.abandoned, "{ctx}: abandoned");
    assert_eq!(
        totals.corrupt_reads, stats.corrupt_reads,
        "{ctx}: corrupt reads"
    );
    assert_eq!(
        totals.stale_restarts, stats.stale_restarts,
        "{ctx}: stale restarts"
    );
    assert_eq!(
        totals.version_skews, stats.version_skews,
        "{ctx}: version skews"
    );
    assert_eq!(totals.wake_batches, stats.wake_batches, "{ctx}: batches");
    assert!(
        totals.in_flight_high as usize <= stats.peak_in_flight,
        "{ctx}: windowed high-water above the true peak"
    );
    // Tick accounting telescopes to the histograms and span totals.
    assert_eq!(
        u128::from(totals.access_ticks),
        hub.access.sum(),
        "{ctx}: access ticks"
    );
    assert_eq!(
        u128::from(totals.tuning_ticks),
        hub.tuning.sum(),
        "{ctx}: tuning ticks"
    );
    assert_eq!(totals.spans, hub.spans, "{ctx}: per-window phase spans");
    // Busy periods cover every completed walk (abandoned walks charge
    // their final, never-walked corrupted read to access, so only
    // non-abandoned walks are guaranteed full busy coverage) and never
    // exceed the simulated horizon.
    let horizon = plain
        .iter()
        .map(|r| r.arrival + r.outcome.access)
        .max()
        .unwrap_or(0);
    let longest = plain
        .iter()
        .filter(|r| !r.outcome.abandoned)
        .map(|r| r.outcome.access)
        .max()
        .unwrap_or(0);
    assert!(totals.busy_ticks >= longest, "{ctx}: busy ticks < a walk");
    assert!(totals.busy_ticks <= horizon, "{ctx}: busy ticks > horizon");
    // Per-window sanity: no window holds more busy ticks than its width.
    for (id, w) in series.windows() {
        assert!(
            w.busy_ticks <= series.width(),
            "{ctx}: window {id} busier than its width"
        );
    }
}

/// Window sums equal end-of-run aggregates exactly on all eight schemes,
/// lossless and at 15 % loss with an abandoning policy — and windowed
/// observation never perturbs outcomes.
#[test]
fn window_sums_equal_aggregates_on_every_scheme() {
    let (ds, pool) = DatasetBuilder::new(60, 0x71E5)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    for (channel, policy, what) in [
        (ChannelModel::NONE, RetryPolicy::UNBOUNDED, "lossless"),
        (
            ChannelModel::from(ErrorModel::new(0.15, 0xFA57)),
            RetryPolicy::bounded(2),
            "15% loss",
        ),
    ] {
        for sys in all_systems(&ds, &params) {
            let requests = request_mix(&ds, &pool, 90, 8 * sys.cycle_len());
            let plain = run_requests_channel(sys.as_ref(), &requests, channel, policy);
            let mut engine = Engine::with_channel(sys.as_ref(), channel, policy);
            engine.enable_metrics_windowed(WindowSpec::new(sys.cycle_len()));
            let observed = engine.run_batch(&requests);
            let hub = engine.take_metrics().expect("metrics were enabled");
            assert_eq!(
                plain,
                observed,
                "{}: windowed observation perturbed outcomes",
                sys.scheme_name()
            );
            assert_totals_exact(sys.scheme_name(), what, &hub, &plain, engine.stats());
        }
    }
}

/// Same exactness under 20 % churn on a [`VersionedServer`]: stale
/// restarts and version skews attribute to windows without losing a
/// single count.
#[test]
fn window_sums_stay_exact_under_churn() {
    let (ds, pool) = DatasetBuilder::new(60, 0x5EED)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let spec = UpdateSpec {
        rate: 0.20,
        seed: 0xABC7,
        horizon_cycles: 16,
    };
    let server = VersionedServer::build(&bda_core::FlatScheme, &ds, &params, spec).unwrap();
    let span = server.timeline().epochs().last().map_or(0, |e| e.start)
        + 4 * DynSystem::cycle_len(&server);
    let requests = request_mix(&ds, &pool, 80, span);
    for (channel, what) in [
        (ChannelModel::NONE, "20% churn"),
        (
            ChannelModel::from(ErrorModel::new(0.10, 0x717)),
            "20% churn + loss",
        ),
    ] {
        let policy = RetryPolicy::UNBOUNDED;
        let plain = run_requests_channel(&server, &requests, channel, policy);
        let (observed, hub) = run_requests_channel_windowed(
            &server,
            &requests,
            channel,
            policy,
            DynSystem::cycle_len(&server),
        );
        assert_eq!(plain, observed, "[{what}]: observation perturbed outcomes");
        let mut engine = Engine::with_channel(&server, channel, policy);
        engine.enable_metrics_windowed(WindowSpec::new(DynSystem::cycle_len(&server)));
        engine.run_batch(&requests);
        assert_totals_exact("versioned-flat", what, &hub, &plain, engine.stats());
        assert!(
            hub.windows.as_ref().unwrap().totals().version_skews > 0,
            "[{what}]: churn must produce version skews to attribute"
        );
    }
}

/// Totals stay exact even when retention is far too small to keep every
/// window live: evicted windows fold into the evicted accumulator, never
/// into the void.
#[test]
fn tight_retention_never_loses_a_count() {
    let ds = DatasetBuilder::new(80, 0x0417).build().unwrap();
    let params = Params::paper();
    let sys = bda_hash::HashScheme::new().build(&ds, &params).unwrap();
    let requests = request_mix(&ds, &[Key(1)], 200, 40 * DynSystem::cycle_len(&sys));
    // Small windows + retain 4: almost everything is evicted online.
    let spec = WindowSpec::new(64).with_retain(4);
    let mut full = Engine::new(&sys);
    full.enable_metrics_windowed(WindowSpec::new(64));
    full.run_batch(&requests);
    let full_hub = full.take_metrics().unwrap();
    let mut tight = Engine::new(&sys);
    tight.enable_metrics_windowed(spec);
    let observed = tight.run_batch(&requests);
    let tight_hub = tight.take_metrics().unwrap();
    assert_eq!(observed.len(), requests.len());
    let tight_series = tight_hub.windows.as_ref().unwrap();
    assert!(tight_series.len() <= 4, "retention must actually trim");
    assert!(
        tight_series.evicted().completions > 0,
        "the fold must have absorbed evicted windows"
    );
    assert_eq!(
        tight_series.totals(),
        full_hub.windows.as_ref().unwrap().totals(),
        "trimmed and untrimmed series must agree on totals"
    );
    // Live windows that survived trimming are identical to the full run's.
    for (id, w) in tight_series.windows() {
        assert_eq!(
            Some(w),
            full_hub.windows.as_ref().unwrap().window(id),
            "live window {id} diverged under retention"
        );
    }
}

/// The merged per-window outcome counters of a sharded windowed run equal
/// the single-engine ones window by window for shard counts {1, 2, 3, 7},
/// with and without tight retention.
#[test]
fn per_window_counters_are_shard_count_invariant() {
    let (ds, pool) = DatasetBuilder::new(60, 0x5A4D)
        .build_with_absent_pool(10)
        .unwrap();
    let params = Params::paper();
    let sys = bda_btree::DistributedScheme::new()
        .build(&ds, &params)
        .unwrap();
    let channel = ChannelModel::from(ErrorModel::new(0.10, 0xC0DE));
    let policy = RetryPolicy::bounded(3);
    let requests = request_mix(&ds, &pool, 160, 12 * DynSystem::cycle_len(&sys));

    for spec in [
        WindowSpec::new(DynSystem::cycle_len(&sys)),
        WindowSpec::new(96).with_retain(6),
    ] {
        let mut single = Engine::with_channel(&sys, channel, policy);
        single.enable_metrics_windowed(spec);
        let baseline = single.run_batch(&requests);
        let single_hub = single.take_metrics().unwrap();
        let single_series = single_hub.windows.as_ref().unwrap();

        for shards in [1usize, 2, 3, 7] {
            let mut engine = ShardedEngine::with_channel(&sys, shards, channel, policy);
            engine.enable_metrics_windowed(spec);
            let outcomes = engine.run_batch(&requests);
            assert_eq!(baseline, outcomes, "shards={shards}: outcomes diverged");
            let merged = engine.take_metrics().expect("metrics were enabled");
            let series = merged.windows.as_ref().unwrap();
            assert_eq!(
                series.totals().outcome_counters(),
                single_series.totals().outcome_counters(),
                "shards={shards}: totals diverged"
            );
            assert_eq!(
                series.watermark(),
                single_series.watermark(),
                "shards={shards}: watermark diverged"
            );
            assert_eq!(
                series.evicted().outcome_counters(),
                single_series.evicted().outcome_counters(),
                "shards={shards}: evicted fold diverged"
            );
            let merged_windows: Vec<(u64, [u64; 8])> = series
                .windows()
                .map(|(id, w)| (id, w.outcome_counters()))
                .collect();
            let single_windows: Vec<(u64, [u64; 8])> = single_series
                .windows()
                .map(|(id, w)| (id, w.outcome_counters()))
                .collect();
            assert_eq!(
                merged_windows, single_windows,
                "shards={shards}: per-window outcome counters diverged"
            );
        }
    }
}

/// `MetricsHub::merged` window folding is associative and
/// order-insensitive on the shard-invariant projection — merging the
/// per-shard hubs by hand in any grouping gives the same series.
#[test]
fn hub_window_merge_is_grouping_insensitive() {
    let ds = DatasetBuilder::new(50, 0x1357).build().unwrap();
    let params = Params::paper();
    let sys = bda_core::FlatScheme.build(&ds, &params).unwrap();
    let requests = request_mix(&ds, &[Key(1)], 120, 10 * DynSystem::cycle_len(&sys));
    let spec = WindowSpec::new(128);
    let mut engine = ShardedEngine::new(&sys, 3);
    engine.enable_metrics_windowed(spec);
    engine.run_batch(&requests);
    let hubs = engine.take_shard_metrics();
    assert_eq!(hubs.len(), 3);

    let left_fold = MetricsHub::merged(hubs.clone()).unwrap();
    let mut right_fold = hubs[2].clone();
    right_fold.merge(&hubs[1]);
    right_fold.merge(&hubs[0]);
    let a = left_fold.windows.as_ref().unwrap();
    let b = right_fold.windows.as_ref().unwrap();
    let proj = |s: &bda_obs::TimeSeries| -> Vec<(u64, [u64; 8])> {
        s.windows()
            .map(|(id, w)| (id, w.outcome_counters()))
            .collect()
    };
    assert_eq!(proj(a), proj(b), "fold order changed the window series");
    assert_eq!(a.totals().outcome_counters(), b.totals().outcome_counters());
}

/// Trace sampling is a pure function of `(seed, index)` — recomputing the
/// selection for the same request stream always picks the same requests,
/// and the count never exceeds the stream.
#[test]
fn trace_sampling_is_reproducible_for_a_request_stream() {
    let n = 5_000u64;
    for seed in [0u64, 0xBEEF, u64::MAX] {
        let a = sample_indices(seed, n, 32);
        let b = sample_indices(seed, n, 32);
        assert_eq!(a, b, "seed={seed:#x}: sampling must be pure");
        assert_eq!(a.len(), 32);
        assert!(a.iter().all(|&i| i < n));
    }
    // The default WindowStats is all-zero — the identity of merge.
    let mut w = WindowStats::default();
    w.merge(&WindowStats::default());
    assert_eq!(w, WindowStats::default());
}
