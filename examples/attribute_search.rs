//! Attribute search over broadcast — the multi-attribute extension.
//!
//! Primary-key lookups are only half the story: the paper's GIS scenario
//! ("find a restaurant … in the vicinity") is really an *attribute* query.
//! Signatures are content-based, so the signature and hybrid schemes can
//! answer them; B+-tree and hashing schemes cannot. This example runs both
//! query types over the same city-guide broadcast and shows why the hybrid
//! layout earns its keep.
//!
//! ```text
//! cargo run --release -p bda --example attribute_search
//! ```

use bda::core::machine::run_machine;
use bda::prelude::*;

const CATEGORIES: [&str; 8] = [
    "restaurant",
    "fuel",
    "hotel",
    "pharmacy",
    "museum",
    "park",
    "atm",
    "cafe",
];

fn main() {
    // City guide: each POI has (key = id, attrs = [id, category, zone]).
    let mut rng = Prng::new(0x6E0);
    let mut keys = std::collections::BTreeSet::new();
    while keys.len() < 3_000 {
        keys.insert(rng.next_u64());
    }
    let records: Vec<Record> = keys
        .iter()
        .map(|&id| {
            let category = 1_000 + rng.below(CATEGORIES.len() as u64);
            let zone = 2_000 + rng.below(64);
            Record::new(Key(id), vec![id, category, zone])
        })
        .collect();
    let dataset = Dataset::new(records).unwrap();
    let params = Params::paper();

    let sig = SimpleSignatureScheme::new()
        .build(&dataset, &params)
        .unwrap();
    let hybrid = HybridScheme::new().build(&dataset, &params).unwrap();
    let dist = DistributedScheme::new().build(&dataset, &params).unwrap();

    println!(
        "city-guide broadcast: {} POIs, 8 categories, 64 zones\n",
        dataset.len()
    );

    // --- key lookups -----------------------------------------------------
    println!("key lookups (averages over 2000 queries, bytes):");
    println!("  {:<12} {:>12} {:>12}", "scheme", "access", "tuning");
    let mut q = Prng::new(1);
    let mut run_keys = |name: &str, f: &mut dyn FnMut(Key, u64) -> AccessOutcome| {
        let (mut at, mut tt) = (0u64, 0u64);
        for _ in 0..2_000 {
            let rec = dataset.record(q.below(dataset.len() as u64) as usize);
            let out = f(rec.key, q.below(1 << 40));
            assert!(out.found);
            at += out.access;
            tt += out.tuning;
        }
        println!("  {:<12} {:>12} {:>12}", name, at / 2_000, tt / 2_000);
    };
    run_keys("distributed", &mut |k, t| dist.probe(k, t));
    run_keys("hybrid", &mut |k, t| hybrid.probe(k, t));
    run_keys("signature", &mut |k, t| sig.probe(k, t));

    // --- attribute queries ------------------------------------------------
    println!("\nattribute queries: \"any POI with category X\" (2000 queries):");
    println!(
        "  {:<12} {:>12} {:>12} {:>8}",
        "scheme", "access", "tuning", "fdrops"
    );
    let mut q = Prng::new(2);
    let mut run_attrs = |name: &str, f: &mut dyn FnMut(u64, u64) -> AccessOutcome| {
        let (mut at, mut tt, mut fd) = (0u64, 0u64, 0u64);
        for _ in 0..2_000 {
            let cat = 1_000 + q.below(CATEGORIES.len() as u64);
            let out = f(cat, q.below(1 << 40));
            assert!(out.found, "every category is somewhere in the city");
            at += out.access;
            tt += out.tuning;
            fd += u64::from(out.false_drops);
        }
        println!(
            "  {:<12} {:>12} {:>12} {:>8.2}",
            name,
            at / 2_000,
            tt / 2_000,
            fd as f64 / 2_000.0
        );
    };
    run_attrs("hybrid", &mut |v, t| hybrid.probe_attr(v, t));
    run_attrs("signature", &mut |v, t| {
        run_machine(sig.channel(), sig.attr_query(v), t)
    });
    println!("  {:<12} {:>12} {:>12}", "distributed", "—", "unanswerable");

    println!(
        "\nCategories are common (1 in 8 records match), so attribute queries\n\
         find a match after a handful of signatures — far cheaper than a key\n\
         lookup by scanning. The hybrid broadcast answers both query types:\n\
         tree-cost keys and signature-cost attributes, for one cycle that is\n\
         only a few percent longer."
    );
}
