//! GIS point-of-interest broadcast — the paper's first motivating scenario
//! ("mobile clients could ask for geographical information to find a
//! restaurant of their choice in the vicinity", §1).
//!
//! A city cell broadcasts its points of interest. Clients frequently ask
//! for POIs that are *not* in this cell's broadcast (they just drove in,
//! their favourite chain has no branch here, …), so **data availability is
//! low** — the regime where the B+-tree schemes shine, because a client
//! can learn "not broadcast" from the index alone instead of scanning the
//! whole cycle.
//!
//! ```text
//! cargo run --release -p bda --example gis_poi
//! ```

use bda::prelude::*;

/// Build a POI dataset: key = POI id, attributes = (category, zone,
/// name-hash) — the fields a signature would superimpose.
fn poi_dataset(n: usize, seed: u64) -> (Dataset, Vec<Key>) {
    let mut rng = Prng::new(seed);
    let mut keys = std::collections::BTreeSet::new();
    while keys.len() < n {
        keys.insert(rng.next_u64());
    }
    let records = keys
        .iter()
        .map(|&id| {
            let category = rng.below(12); // restaurant, fuel, hotel, …
            let zone = rng.below(64); // map tile
            let name_hash = rng.next_u64();
            Record::new(Key(id), vec![id, category, zone, name_hash])
        })
        .collect();
    let dataset = Dataset::new(records).unwrap();
    // POIs of *other* cells: what roaming clients keep asking about.
    let mut absent = Vec::with_capacity(n);
    while absent.len() < n {
        let k = rng.next_u64();
        if !keys.contains(&k) {
            absent.push(Key(k));
        }
    }
    (dataset, absent)
}

fn main() {
    let (dataset, absent) = poi_dataset(4_000, 7);
    let params = Params::paper();
    // Only ~30 % of queried POIs are actually in this cell's broadcast.
    let availability = 0.3;

    println!(
        "GIS cell broadcast: {} POIs, {:.0}% of queries answerable locally\n",
        dataset.len(),
        availability * 100.0,
    );
    println!(
        "  {:<14} {:>12} {:>12} {:>9} {:>8}",
        "scheme", "access", "tuning", "requests", "found%"
    );

    let flat = FlatScheme.build(&dataset, &params).unwrap();
    let one_m = OneMScheme::new().build(&dataset, &params).unwrap();
    let dist = DistributedScheme::new().build(&dataset, &params).unwrap();
    let hashing = HashScheme::new().build(&dataset, &params).unwrap();
    let sig = SimpleSignatureScheme::new()
        .build(&dataset, &params)
        .unwrap();
    let systems: [&dyn DynSystem; 5] = [&flat, &one_m, &dist, &hashing, &sig];

    let mut best: Option<(&str, f64)> = None;
    for sys in systems {
        let workload = QueryWorkload::new(
            &dataset,
            absent.clone(),
            availability,
            Popularity::Uniform,
            99,
        );
        let mut sim = Simulator::new(sys, workload, SimConfig::quick());
        let r = sim.run();
        println!(
            "  {:<14} {:>12.0} {:>12.0} {:>9} {:>7.1}%",
            r.scheme,
            r.mean_access(),
            r.mean_tuning(),
            r.requests,
            100.0 * r.found as f64 / r.requests as f64,
        );
        let score = r.mean_tuning(); // battery-powered handset: energy first
        if best.map_or(true, |(_, s)| score < s) {
            best = Some((r.scheme, score));
        }
    }

    let (winner, _) = best.unwrap();
    let pct = availability * 100.0;
    println!(
        "\nLowest energy per lookup at {pct:.0}% availability: {winner}.\n\
         This matches the paper's §5.3 criteria: \"(1,m) indexing and distributed\n\
         indexing achieve good tuning time and access time under low data\n\
         availability … a better choice in applications that exhibit frequent\n\
         search failures.\""
    );
}
