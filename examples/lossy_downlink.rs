//! Broadcast over a lossy downlink — the error-prone-channel extension.
//!
//! Wireless broadcast is noisy: buckets are corrupted in flight and a
//! client cannot ask for retransmission. This example drives every access
//! method over channels with increasing loss and shows how each protocol's
//! recovery behaves (index schemes restart their pointer chase; scanning
//! schemes track coverage holes and re-read only what they missed).
//!
//! ```text
//! cargo run --release -p bda --example lossy_downlink
//! ```

use bda::core::ErrorModel;
use bda::prelude::*;

fn main() {
    let dataset = DatasetBuilder::new(2_000, 7).build().unwrap();
    let params = Params::paper();

    let flat = FlatScheme.build(&dataset, &params).unwrap();
    let dist = DistributedScheme::new().build(&dataset, &params).unwrap();
    let hashing = HashScheme::new().build(&dataset, &params).unwrap();
    let sig = SimpleSignatureScheme::new()
        .build(&dataset, &params)
        .unwrap();
    let systems: [&dyn DynSystem; 4] = [&flat, &dist, &hashing, &sig];

    println!("2000 records; 3000 key lookups per cell; metrics in bytes\n");
    println!(
        "{:<13} {:>6} {:>12} {:>10} {:>14} {:>8}",
        "scheme", "loss%", "access", "tuning", "retries/query", "found%"
    );
    let mut rng = Prng::new(99);
    for sys in systems {
        let cycle = sys.cycle_len();
        for loss_pct in [0u32, 5, 15] {
            let errors = ErrorModel::new(f64::from(loss_pct) / 100.0, 0xC0FFEE);
            let queries = 3_000;
            let mut access = 0u64;
            let mut tuning = 0u64;
            let mut retries = 0u64;
            let mut found = 0u64;
            for _ in 0..queries {
                let key = dataset.record(rng.below(dataset.len() as u64) as usize).key;
                let out = sys.probe_with_errors(key, rng.below(cycle * 4), errors);
                assert!(!out.aborted, "protocols must recover, not give up");
                access += out.access;
                tuning += out.tuning;
                retries += u64::from(out.retries);
                found += u64::from(out.found);
            }
            println!(
                "{:<13} {:>6} {:>12} {:>10} {:>14.2} {:>7.1}%",
                sys.scheme_name(),
                loss_pct,
                access / queries,
                tuning / queries,
                retries as f64 / queries as f64,
                100.0 * found as f64 / queries as f64,
            );
        }
    }

    println!(
        "\nEvery query still succeeds (found = 100%): corruption costs time and\n\
         energy, never correctness. Pointer-chasing schemes (hashing, the\n\
         B+-trees) pay a protocol restart per lost index bucket; scanning\n\
         schemes degrade smoothly because a lost bucket just stays uncovered\n\
         until the next cycle."
    );
}
