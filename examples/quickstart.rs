//! Quickstart: build a broadcast, run client queries, read the two metrics.
//!
//! ```text
//! cargo run --release -p bda --example quickstart
//! ```

use bda::prelude::*;

fn main() {
    // 1. The server's database: a synthetic dictionary (the paper uses a
    //    ~35,000-record dictionary; 2,000 keeps this example instant).
    let dataset = DatasetBuilder::new(2_000, 42).build().unwrap();
    let params = Params::paper(); // 500-byte records, 25-byte keys (Table 1)

    // 2. Lay out the broadcast cycle with distributed indexing — the
    //    B+-tree scheme with replicated upper levels and control indexes.
    let system = DistributedScheme::new().build(&dataset, &params).unwrap();
    println!(
        "broadcast cycle: {} buckets, {} bytes ({} records)",
        bda::core::DynSystem::num_buckets(&system),
        system.channel().cycle_len(),
        dataset.len(),
    );

    // 3. A mobile client wants one record and tunes in at an arbitrary
    //    instant. The protocol reads a handful of index buckets, dozing
    //    in between, then downloads the record.
    let key = dataset.record(1_234).key;
    let outcome = system.probe(key, 5_000_000);
    println!("\nquery {key}:");
    println!("  found       : {}", outcome.found);
    println!(
        "  access time : {:>9} bytes (client waiting time)",
        outcome.access
    );
    println!(
        "  tuning time : {:>9} bytes (energy: bytes listened to)",
        outcome.tuning
    );
    println!("  bucket reads: {:>9}", outcome.probes);

    // 4. The same query under every access method the paper compares.
    println!("\nper-scheme comparison (same query, same tune-in):");
    println!(
        "  {:<14} {:>12} {:>12} {:>7}",
        "scheme", "access", "tuning", "reads"
    );
    let flat = FlatScheme.build(&dataset, &params).unwrap();
    let one_m = OneMScheme::new().build(&dataset, &params).unwrap();
    let hashing = HashScheme::new().build(&dataset, &params).unwrap();
    let sig = SimpleSignatureScheme::new()
        .build(&dataset, &params)
        .unwrap();
    let systems: [&dyn DynSystem; 5] = [&flat, &one_m, &system, &hashing, &sig];
    for sys in systems {
        let o = sys.probe(key, 5_000_000);
        assert!(o.found);
        println!(
            "  {:<14} {:>12} {:>12} {:>7}",
            sys.scheme_name(),
            o.access,
            o.tuning,
            o.probes
        );
    }

    // 5. Statistically solid numbers come from the testbed: simulate
    //    until the 95 %/5 % confidence-accuracy target is met.
    let mut sim = Simulator::uniform(&system, &dataset, SimConfig::quick());
    let report = sim.run();
    println!(
        "\nsimulated means over {} requests ({} rounds): access {:.0} bytes, tuning {:.0} bytes",
        report.requests,
        report.rounds,
        report.mean_access(),
        report.mean_tuning()
    );
}
