//! Scheme advisor — the paper's §5.3 selection criteria, executable.
//!
//! Describe your application's workload and the advisor measures every
//! access method on a matching synthetic workload, then recommends one
//! using the priorities you stated.
//!
//! ```text
//! cargo run --release -p bda --example scheme_advisor -- \
//!     --records 5000 --availability 60 --ratio 20 --priority energy
//! ```
//!
//! * `--records N`        broadcast size (default 3000)
//! * `--availability P`   percent of queries whose key is broadcast (default 100)
//! * `--ratio R`          record/key ratio (default 20, the paper's Table 1)
//! * `--priority X`       `energy` (tuning time), `latency` (access time) or
//!   `balanced` (normalized product) — default balanced

use bda::prelude::*;

struct Args {
    records: usize,
    availability: f64,
    ratio: u32,
    priority: String,
}

fn parse_args() -> Args {
    let mut a = Args {
        records: 3_000,
        availability: 1.0,
        ratio: 20,
        priority: "balanced".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--records" => a.records = val().parse().expect("--records N"),
            "--availability" => {
                a.availability = val().parse::<f64>().expect("--availability P") / 100.0
            }
            "--ratio" => a.ratio = val().parse().expect("--ratio R"),
            "--priority" => a.priority = val(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    assert!(
        (0.0..=1.0).contains(&a.availability),
        "availability in 0..=100"
    );
    a
}

fn main() {
    let args = parse_args();
    let params = Params::with_record_key_ratio(args.ratio).unwrap();
    let (dataset, pool) = DatasetBuilder::new(args.records, 0xAD_71CE)
        .build_with_absent_pool(args.records)
        .unwrap();

    println!(
        "workload: {} records, {:.0}% availability, record/key ratio {}, priority {}\n",
        args.records,
        args.availability * 100.0,
        args.ratio,
        args.priority
    );

    let flat = FlatScheme.build(&dataset, &params).unwrap();
    let one_m = OneMScheme::new().build(&dataset, &params).unwrap();
    let dist = DistributedScheme::new().build(&dataset, &params).unwrap();
    let hashing = HashScheme::new().build(&dataset, &params).unwrap();
    let sig = SimpleSignatureScheme::new()
        .build(&dataset, &params)
        .unwrap();
    let systems: [&dyn DynSystem; 5] = [&flat, &one_m, &dist, &hashing, &sig];

    println!("  {:<14} {:>12} {:>12}", "scheme", "access", "tuning");
    let mut measured: Vec<(&str, f64, f64)> = Vec::new();
    for sys in systems {
        let workload = QueryWorkload::new(
            &dataset,
            pool.clone(),
            args.availability,
            Popularity::Uniform,
            17,
        );
        let mut sim = Simulator::new(sys, workload, SimConfig::quick());
        let r = sim.run();
        println!(
            "  {:<14} {:>12.0} {:>12.0}",
            r.scheme,
            r.mean_access(),
            r.mean_tuning()
        );
        measured.push((r.scheme, r.mean_access(), r.mean_tuning()));
    }

    // Normalize each metric by its best value, then score per priority.
    let best_at = measured.iter().map(|m| m.1).fold(f64::INFINITY, f64::min);
    let best_tt = measured.iter().map(|m| m.2).fold(f64::INFINITY, f64::min);
    let score = |at: f64, tt: f64| -> f64 {
        match args.priority.as_str() {
            "energy" => tt / best_tt,
            "latency" => at / best_at,
            _ => (at / best_at) * (tt / best_tt),
        }
    };
    let winner = measured
        .iter()
        .min_by(|a, b| score(a.1, a.2).total_cmp(&score(b.1, b.2)))
        .unwrap();

    println!("\nrecommendation: {}", winner.0);
    println!("\npaper §5.3 rules of thumb for cross-checking:");
    println!("  - flat broadcast: best access time, unusable tuning time");
    println!("  - signature: best indexed access time; prefer when energy is secondary");
    println!("  - hashing: best tuning time at high availability");
    println!("  - (1,m)/distributed: best at low availability or large record/key ratio;");
    println!("    (1,m) if access time matters more, distributed otherwise");
}
