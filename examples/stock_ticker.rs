//! Wireless stock-market data delivery — the paper's second motivating
//! scenario ("stock information from any stock exchange in the world could
//! be broadcast on wireless channels", §1).
//!
//! Traders care about *freshness*: the metric that matters is access time
//! (how stale a quote is when it reaches the screen), while the terminal
//! is usually powered, so tuning time is secondary. Every queried ticker
//! is in the broadcast (100 % availability). Under those requirements the
//! paper's §5.3 criteria pick signature indexing: "when energy is of less
//! concern than waiting time, signature indexing is a preferred method."
//!
//! ```text
//! cargo run --release -p bda --example stock_ticker
//! ```

use bda::prelude::*;

/// Tickers: key = symbol ordinal; attributes = (exchange, sector,
/// price-band) — the fields a multi-attribute signature covers.
fn ticker_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = Prng::new(seed);
    let mut keys = std::collections::BTreeSet::new();
    while keys.len() < n {
        keys.insert(rng.next_u64() >> 16); // compact symbol space
    }
    let records = keys
        .iter()
        .map(|&sym| {
            Record::new(
                Key(sym),
                vec![sym, rng.below(12), rng.below(40), rng.below(8)],
            )
        })
        .collect();
    Dataset::new(records).unwrap()
}

fn main() {
    let dataset = ticker_dataset(3_000, 2002);
    let params = Params::paper();

    println!(
        "stock ticker broadcast: {} symbols, every query answerable\n",
        dataset.len()
    );
    println!(
        "  {:<14} {:>12} {:>12} {:>10}",
        "scheme", "access", "tuning", "cycle(B)"
    );

    let flat = FlatScheme.build(&dataset, &params).unwrap();
    let one_m = OneMScheme::new().build(&dataset, &params).unwrap();
    let dist = DistributedScheme::new().build(&dataset, &params).unwrap();
    let hashing = HashScheme::new().build(&dataset, &params).unwrap();
    let sig = SimpleSignatureScheme::new()
        .build(&dataset, &params)
        .unwrap();
    let systems: [&dyn DynSystem; 5] = [&flat, &one_m, &dist, &hashing, &sig];

    let mut best_indexed: Option<(&str, f64)> = None;
    for sys in systems {
        let mut sim = Simulator::uniform(sys, &dataset, SimConfig::quick());
        let r = sim.run();
        println!(
            "  {:<14} {:>12.0} {:>12.0} {:>10}",
            r.scheme,
            r.mean_access(),
            r.mean_tuning(),
            r.cycle_len,
        );
        // Flat broadcast always wins raw access time but burns the radio
        // continuously; compare the *indexed* schemes.
        if r.scheme != "flat" {
            let score = r.mean_access();
            if best_indexed.map_or(true, |(_, s)| score < s) {
                best_indexed = Some((r.scheme, score));
            }
        }
    }

    let (winner, _) = best_indexed.unwrap();
    println!(
        "\nFreshest quotes among indexed schemes: {winner}.\n\
         Signatures add only a few bytes per record to the cycle, so access\n\
         time stays within a few percent of plain broadcast while still\n\
         allowing receivers to doze over non-matching quotes."
    );
}
