//! The paper's headline validation (Fig. 4): "the simulation results match
//! the analytical results very well". For every modelled scheme, the
//! testbed's converged means must sit within a few percent of the closed
//! forms of `bda-analytical`.

use bda::analytical as model;
use bda::prelude::*;

const NR: usize = 3_000;

fn report_for(sys: &dyn DynSystem, ds: &Dataset) -> SimReport {
    let mut cfg = SimConfig::quick();
    cfg.accuracy = 0.02;
    cfg.confidence = 0.99;
    cfg.event_driven = false;
    cfg.max_rounds = 600;
    let r = Simulator::uniform(sys, ds, cfg).run();
    assert!(r.converged, "{} did not converge", sys.scheme_name());
    assert_eq!(r.aborted, 0);
    r
}

fn assert_close(label: &str, measured: f64, modeled: f64, tol: f64) {
    let rel = (measured - modeled).abs() / modeled;
    assert!(
        rel < tol,
        "{label}: simulated {measured:.0} vs analytical {modeled:.0} (rel {rel:.3} > {tol})"
    );
}

#[test]
fn flat_matches_model() {
    let ds = DatasetBuilder::new(NR, 1).build().unwrap();
    let p = Params::paper();
    let sys = FlatScheme.build(&ds, &p).unwrap();
    let r = report_for(&sys, &ds);
    let m = model::flat(&p, NR);
    assert_close("flat access", r.mean_access(), m.access, 0.05);
    assert_close("flat tuning", r.mean_tuning(), m.tuning, 0.05);
}

#[test]
fn one_m_matches_model() {
    let ds = DatasetBuilder::new(NR, 2).build().unwrap();
    let p = Params::paper();
    let sys = OneMScheme::new().build(&ds, &p).unwrap();
    let r = report_for(&sys, &ds);
    let m = model::one_m(&p, NR, None);
    assert_close("(1,m) access", r.mean_access(), m.access, 0.08);
    assert_close("(1,m) tuning", r.mean_tuning(), m.tuning, 0.15);
}

#[test]
fn distributed_matches_model() {
    let ds = DatasetBuilder::new(NR, 3).build().unwrap();
    let p = Params::paper();
    let sys = DistributedScheme::new().build(&ds, &p).unwrap();
    let r = report_for(&sys, &ds);
    let m = model::distributed(&p, NR, None);
    assert_close("distributed access", r.mean_access(), m.access, 0.12);
    assert_close("distributed tuning", r.mean_tuning(), m.tuning, 0.20);
}

#[test]
fn hashing_matches_model() {
    let ds = DatasetBuilder::new(NR, 4).build().unwrap();
    let p = Params::paper();
    let sys = HashScheme::new().build(&ds, &p).unwrap();
    let r = report_for(&sys, &ds);
    let m = model::hash(&p, NR, sys.na(), sys.num_collisions());
    assert_close("hashing access", r.mean_access(), m.access, 0.08);
    assert_close("hashing tuning", r.mean_tuning(), m.tuning, 0.12);
}

/// Converged Zipf-workload report for a system (full availability, so
/// every request is answerable and `aborted` stays zero).
fn zipf_report(sys: &dyn DynSystem, ds: &Dataset, theta: f64, seed: u64) -> SimReport {
    let workload = QueryWorkload::new(ds, Vec::new(), 1.0, Popularity::Zipf(theta), seed);
    let mut cfg = SimConfig::quick();
    cfg.accuracy = 0.02;
    cfg.confidence = 0.99;
    cfg.event_driven = false;
    cfg.max_rounds = 600;
    let r = Simulator::new(sys, workload, cfg).run();
    assert!(r.converged, "{} did not converge", sys.scheme_name());
    assert_eq!(r.aborted, 0);
    r
}

/// The repetition-schedule closed form (weighted mean of per-record
/// inter-arrival gap costs) tracks the simulated stratified program across
/// the whole skew sweep, θ = 0 … 1.2, at D = 3.
#[test]
fn flat_disks_matches_model_across_skew() {
    let n = 600;
    let p = Params::paper();
    let config = DiskConfig::new(3);
    let layout = DiskLayout::new(n, &config);
    for (i, theta) in [0.0, 0.4, 0.8, 1.2].into_iter().enumerate() {
        let ds = DatasetBuilder::new(n, 60 + i as u64).build().unwrap();
        let sys = FlatDisksScheme::new(config).build(&ds, &p).unwrap();
        let r = zipf_report(&sys, &ds, theta, 600 + i as u64);
        let m = model::flat_disks(&p, layout.schedule(), &zipf_weights(n, theta));
        assert_close(
            &format!("flat-disks θ={theta} access"),
            r.mean_access(),
            m.access,
            0.05,
        );
        assert_close(
            &format!("flat-disks θ={theta} tuning"),
            r.mean_tuning(),
            m.tuning,
            0.05,
        );
    }
}

/// The point of stratification: at high skew (θ ≥ 0.8) the measured mean
/// access time of the D = 3 program strictly improves on the flat cycle
/// measured identically — and the analytical models predict the same
/// ordering.
#[test]
fn stratification_beats_the_flat_cycle_at_high_skew() {
    let n = 600;
    let p = Params::paper();
    let config = DiskConfig::new(3);
    let layout = DiskLayout::new(n, &config);
    for (i, theta) in [0.8, 1.2].into_iter().enumerate() {
        let ds = DatasetBuilder::new(n, 80 + i as u64).build().unwrap();
        let flat = FlatScheme.build(&ds, &p).unwrap();
        let disks = FlatDisksScheme::new(config).build(&ds, &p).unwrap();
        let seed = 800 + i as u64;
        let flat_at = zipf_report(&flat, &ds, theta, seed).mean_access();
        let disks_at = zipf_report(&disks, &ds, theta, seed).mean_access();
        assert!(
            disks_at < flat_at,
            "θ={theta}: D=3 measured At {disks_at:.0} must beat flat {flat_at:.0}"
        );
        let weights = zipf_weights(n, theta);
        let m_flat = model::flat(&p, n);
        let m_disks = model::flat_disks(&p, layout.schedule(), &weights);
        assert!(
            m_disks.access < m_flat.access,
            "θ={theta}: model ordering must agree ({} vs {})",
            m_disks.access,
            m_flat.access
        );
    }
}

/// Exact weighted measurement of a channel group's mean access time:
/// every dataset key is probed at `PHASES` evenly spaced tune-in phases
/// (from a per-key uniformly random base within eight group cycles) and
/// the per-key means are folded with the Zipf weights. Enumerating keys
/// removes the workload-sampling noise outright, and the systematic
/// phase grid (a random rotation of a regular grid is unbiased for the
/// uniform-phase mean) collapses the sawtooth-wait variance — so the
/// 5 % margin below is a statement about the model, not the estimator.
fn weighted_group_at(sys: &dyn DynSystem, ds: &Dataset, weights: &[f64], seed: u64) -> f64 {
    const PHASES: u64 = 64;
    let mut rng = Prng::new(seed);
    let cycle = sys.cycle_len();
    let span = cycle * 8;
    let stride = (cycle / PHASES).max(1);
    let mut at = 0.0;
    for (key, &w) in ds.keys().zip(weights) {
        let base = rng.below(span);
        let mut key_at = 0.0;
        for p in 0..PHASES {
            let out = sys.probe(key, (base + p * stride) % span);
            assert!(out.found, "{} lost a broadcast key", sys.scheme_name());
            key_at += out.access as f64;
        }
        at += w * key_at / PHASES as f64;
    }
    at
}

/// The air-time allocator's headline contract (multichannel extension):
/// across the K × switch-cost sweep at two skews, the closed-form
/// predicted mean access time of the partition it returns sits within
/// 5 % of the exact weighted measurement of the built striped group at
/// equal aggregate bandwidth.
#[test]
fn striped_allocator_matches_simulation_across_k_and_switch_cost() {
    let n = 400;
    let p = Params::paper();
    let ds = DatasetBuilder::new(n, 0xA110).build().unwrap();
    for theta in [0.8, 1.2] {
        let weights = zipf_weights(n, theta);
        for k in [1u32, 2, 4] {
            for sw in [0u64, 256, 2048] {
                let alloc = model::best_striped(&p, &weights, k, sw, model::flat);
                let config = GroupConfig::new(alloc.channels, sw).unwrap();
                let sys = StripedScheme::with_partition(FlatScheme, config, alloc.sizes.clone())
                    .build(&ds, &p)
                    .unwrap();
                let seed = 0xA110 ^ (u64::from(k) << 16) ^ sw ^ theta.to_bits();
                let at = weighted_group_at(&sys, &ds, &weights, seed);
                assert_close(
                    &format!("striped flat θ={theta} K={k} sw={sw} access"),
                    at,
                    alloc.predicted.access,
                    0.05,
                );
            }
        }
    }
    // The signature slice model holds at the K = 4 spotlight too.
    let weights = zipf_weights(n, 1.2);
    let sig = |pp: &Params, m: usize| model::signature(pp, &SigParams::default(), 4, m);
    let alloc = model::best_striped(&p, &weights, 4, 256, sig);
    let config = GroupConfig::new(alloc.channels, 256).unwrap();
    let sys =
        StripedScheme::with_partition(SimpleSignatureScheme::new(), config, alloc.sizes.clone())
            .build(&ds, &p)
            .unwrap();
    let at = weighted_group_at(&sys, &ds, &weights, 0x516);
    assert_close(
        "striped signature θ=1.2 K=4 sw=256 access",
        at,
        alloc.predicted.access,
        0.05,
    );
}

/// The allocator's dominance pin: even striping is inside the dynamic
/// program's search space, so the partition it returns can never predict
/// worse than naive even striping — across the whole skew × K ×
/// switch-cost grid — and at heavy skew the *measured* access times of
/// the two built groups confirm the ordering on the air.
#[test]
fn allocator_never_returns_a_placement_worse_than_even_striping() {
    let n = 400;
    let p = Params::paper();
    let ds = DatasetBuilder::new(n, 0xA111).build().unwrap();
    for theta in [0.0, 0.4, 0.8, 1.2] {
        let weights = zipf_weights(n, theta);
        for k in [2u32, 4, 8] {
            for sw in [0u64, 256, 2048] {
                let best = model::best_striped(&p, &weights, k, sw, model::flat);
                let even = model::even_striped(&p, &weights, k, sw, model::flat);
                assert!(
                    best.predicted.access <= even.predicted.access + 1e-9,
                    "θ={theta} K={k} sw={sw}: DP predicted {:.0}, worse than even {:.0}",
                    best.predicted.access,
                    even.predicted.access
                );
            }
        }
    }
    // Measured, where the gap is wide: at θ = 1.2, K = 4, the allocated
    // partition must beat even striping when both groups actually air.
    let weights = zipf_weights(n, 1.2);
    let config = GroupConfig::new(4, 256).unwrap();
    let best = model::best_striped(&p, &weights, 4, 256, model::flat);
    let even = model::even_striped(&p, &weights, 4, 256, model::flat);
    let best_sys = StripedScheme::with_partition(FlatScheme, config, best.sizes.clone())
        .build(&ds, &p)
        .unwrap();
    let even_sys = StripedScheme::with_partition(FlatScheme, config, even.sizes.clone())
        .build(&ds, &p)
        .unwrap();
    let best_at = weighted_group_at(&best_sys, &ds, &weights, 0xBE57);
    let even_at = weighted_group_at(&even_sys, &ds, &weights, 0xE7E7);
    assert!(
        best_at < even_at,
        "θ=1.2 K=4: measured allocator At {best_at:.0} must beat even {even_at:.0}"
    );
}

#[test]
fn signature_matches_model() {
    let ds = DatasetBuilder::new(NR, 5).build().unwrap();
    let p = Params::paper();
    let sys = SimpleSignatureScheme::new().build(&ds, &p).unwrap();
    let r = report_for(&sys, &ds);
    // datagen records: 4 attributes with the key as attribute 0 → 4
    // distinct superimposed strings.
    let m = model::signature(&p, &SigParams::default(), 4, NR);
    assert_close("signature access", r.mean_access(), m.access, 0.05);
    assert_close("signature tuning", r.mean_tuning(), m.tuning, 0.15);
}
