//! The paper's headline validation (Fig. 4): "the simulation results match
//! the analytical results very well". For every modelled scheme, the
//! testbed's converged means must sit within a few percent of the closed
//! forms of `bda-analytical`.

use bda::analytical as model;
use bda::prelude::*;

const NR: usize = 3_000;

fn report_for(sys: &dyn DynSystem, ds: &Dataset) -> SimReport {
    let mut cfg = SimConfig::quick();
    cfg.accuracy = 0.02;
    cfg.confidence = 0.99;
    cfg.event_driven = false;
    cfg.max_rounds = 600;
    let r = Simulator::uniform(sys, ds, cfg).run();
    assert!(r.converged, "{} did not converge", sys.scheme_name());
    assert_eq!(r.aborted, 0);
    r
}

fn assert_close(label: &str, measured: f64, modeled: f64, tol: f64) {
    let rel = (measured - modeled).abs() / modeled;
    assert!(
        rel < tol,
        "{label}: simulated {measured:.0} vs analytical {modeled:.0} (rel {rel:.3} > {tol})"
    );
}

#[test]
fn flat_matches_model() {
    let ds = DatasetBuilder::new(NR, 1).build().unwrap();
    let p = Params::paper();
    let sys = FlatScheme.build(&ds, &p).unwrap();
    let r = report_for(&sys, &ds);
    let m = model::flat(&p, NR);
    assert_close("flat access", r.mean_access(), m.access, 0.05);
    assert_close("flat tuning", r.mean_tuning(), m.tuning, 0.05);
}

#[test]
fn one_m_matches_model() {
    let ds = DatasetBuilder::new(NR, 2).build().unwrap();
    let p = Params::paper();
    let sys = OneMScheme::new().build(&ds, &p).unwrap();
    let r = report_for(&sys, &ds);
    let m = model::one_m(&p, NR, None);
    assert_close("(1,m) access", r.mean_access(), m.access, 0.08);
    assert_close("(1,m) tuning", r.mean_tuning(), m.tuning, 0.15);
}

#[test]
fn distributed_matches_model() {
    let ds = DatasetBuilder::new(NR, 3).build().unwrap();
    let p = Params::paper();
    let sys = DistributedScheme::new().build(&ds, &p).unwrap();
    let r = report_for(&sys, &ds);
    let m = model::distributed(&p, NR, None);
    assert_close("distributed access", r.mean_access(), m.access, 0.12);
    assert_close("distributed tuning", r.mean_tuning(), m.tuning, 0.20);
}

#[test]
fn hashing_matches_model() {
    let ds = DatasetBuilder::new(NR, 4).build().unwrap();
    let p = Params::paper();
    let sys = HashScheme::new().build(&ds, &p).unwrap();
    let r = report_for(&sys, &ds);
    let m = model::hash(&p, NR, sys.na(), sys.num_collisions());
    assert_close("hashing access", r.mean_access(), m.access, 0.08);
    assert_close("hashing tuning", r.mean_tuning(), m.tuning, 0.12);
}

/// Converged Zipf-workload report for a system (full availability, so
/// every request is answerable and `aborted` stays zero).
fn zipf_report(sys: &dyn DynSystem, ds: &Dataset, theta: f64, seed: u64) -> SimReport {
    let workload = QueryWorkload::new(ds, Vec::new(), 1.0, Popularity::Zipf(theta), seed);
    let mut cfg = SimConfig::quick();
    cfg.accuracy = 0.02;
    cfg.confidence = 0.99;
    cfg.event_driven = false;
    cfg.max_rounds = 600;
    let r = Simulator::new(sys, workload, cfg).run();
    assert!(r.converged, "{} did not converge", sys.scheme_name());
    assert_eq!(r.aborted, 0);
    r
}

/// The repetition-schedule closed form (weighted mean of per-record
/// inter-arrival gap costs) tracks the simulated stratified program across
/// the whole skew sweep, θ = 0 … 1.2, at D = 3.
#[test]
fn flat_disks_matches_model_across_skew() {
    let n = 600;
    let p = Params::paper();
    let config = DiskConfig::new(3);
    let layout = DiskLayout::new(n, &config);
    for (i, theta) in [0.0, 0.4, 0.8, 1.2].into_iter().enumerate() {
        let ds = DatasetBuilder::new(n, 60 + i as u64).build().unwrap();
        let sys = FlatDisksScheme::new(config).build(&ds, &p).unwrap();
        let r = zipf_report(&sys, &ds, theta, 600 + i as u64);
        let m = model::flat_disks(&p, layout.schedule(), &zipf_weights(n, theta));
        assert_close(
            &format!("flat-disks θ={theta} access"),
            r.mean_access(),
            m.access,
            0.05,
        );
        assert_close(
            &format!("flat-disks θ={theta} tuning"),
            r.mean_tuning(),
            m.tuning,
            0.05,
        );
    }
}

/// The point of stratification: at high skew (θ ≥ 0.8) the measured mean
/// access time of the D = 3 program strictly improves on the flat cycle
/// measured identically — and the analytical models predict the same
/// ordering.
#[test]
fn stratification_beats_the_flat_cycle_at_high_skew() {
    let n = 600;
    let p = Params::paper();
    let config = DiskConfig::new(3);
    let layout = DiskLayout::new(n, &config);
    for (i, theta) in [0.8, 1.2].into_iter().enumerate() {
        let ds = DatasetBuilder::new(n, 80 + i as u64).build().unwrap();
        let flat = FlatScheme.build(&ds, &p).unwrap();
        let disks = FlatDisksScheme::new(config).build(&ds, &p).unwrap();
        let seed = 800 + i as u64;
        let flat_at = zipf_report(&flat, &ds, theta, seed).mean_access();
        let disks_at = zipf_report(&disks, &ds, theta, seed).mean_access();
        assert!(
            disks_at < flat_at,
            "θ={theta}: D=3 measured At {disks_at:.0} must beat flat {flat_at:.0}"
        );
        let weights = zipf_weights(n, theta);
        let m_flat = model::flat(&p, n);
        let m_disks = model::flat_disks(&p, layout.schedule(), &weights);
        assert!(
            m_disks.access < m_flat.access,
            "θ={theta}: model ordering must agree ({} vs {})",
            m_disks.access,
            m_flat.access
        );
    }
}

#[test]
fn signature_matches_model() {
    let ds = DatasetBuilder::new(NR, 5).build().unwrap();
    let p = Params::paper();
    let sys = SimpleSignatureScheme::new().build(&ds, &p).unwrap();
    let r = report_for(&sys, &ds);
    // datagen records: 4 attributes with the key as attribute 0 → 4
    // distinct superimposed strings.
    let m = model::signature(&p, &SigParams::default(), 4, NR);
    assert_close("signature access", r.mean_access(), m.access, 0.05);
    assert_close("signature tuning", r.mean_tuning(), m.tuning, 0.15);
}
