//! Data-availability behaviour (the regime of Fig. 5): absent keys must be
//! reported correctly by every scheme, and the *cost* of discovering
//! absence must follow the paper's analysis — index schemes learn it from
//! the index, scanning schemes pay a whole cycle.

use bda::prelude::*;

fn fixtures() -> (Dataset, Vec<Key>) {
    DatasetBuilder::new(300, 0xA11)
        .build_with_absent_pool(300)
        .unwrap()
}

fn systems(ds: &Dataset, params: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(FlatScheme.build(ds, params).unwrap()),
        Box::new(OneMScheme::new().build(ds, params).unwrap()),
        Box::new(DistributedScheme::new().build(ds, params).unwrap()),
        Box::new(HashScheme::new().build(ds, params).unwrap()),
        Box::new(SimpleSignatureScheme::new().build(ds, params).unwrap()),
        Box::new(IntegratedSignatureScheme::new(8).build(ds, params).unwrap()),
        Box::new(MultiLevelSignatureScheme::new(8).build(ds, params).unwrap()),
        Box::new(HybridScheme::new().build(ds, params).unwrap()),
    ]
}

#[test]
fn absent_keys_are_never_found() {
    let (ds, pool) = fixtures();
    let params = Params::paper();
    for sys in systems(&ds, &params) {
        for (i, k) in pool.iter().enumerate().take(100) {
            let out = sys.probe(*k, i as u64 * 7919);
            assert!(!out.found, "{}: phantom {k}", sys.scheme_name());
            assert!(!out.aborted, "{}", sys.scheme_name());
        }
    }
}

#[test]
fn btree_schemes_fail_fast_scanners_pay_a_cycle() {
    let (ds, pool) = fixtures();
    let params = Params::paper();
    let dt = u64::from(params.data_bucket_size());

    let dist = DistributedScheme::new().build(&ds, &params).unwrap();
    let one_m = OneMScheme::new().build(&ds, &params).unwrap();
    let flat = FlatScheme.build(&ds, &params).unwrap();
    let sig = SimpleSignatureScheme::new().build(&ds, &params).unwrap();

    let mut dist_t = 0u64;
    let mut onem_t = 0u64;
    let mut flat_t = 0u64;
    let mut sig_t = 0u64;
    let n = 50u64;
    for (i, k) in pool.iter().enumerate().take(n as usize) {
        let t = i as u64 * 104_729;
        dist_t += dist.probe(*k, t).tuning;
        onem_t += one_m.probe(*k, t).tuning;
        flat_t += flat.probe(*k, t).tuning;
        sig_t += sig.probe(*k, t).tuning;
    }
    let (dist_t, onem_t, flat_t, sig_t) = (dist_t / n, onem_t / n, flat_t / n, sig_t / n);

    // B+-tree schemes: a handful of index probes.
    assert!(dist_t <= 10 * dt, "distributed fail tuning {dist_t}");
    assert!(onem_t <= 10 * dt, "(1,m) fail tuning {onem_t}");
    // Flat: the whole cycle is listened to.
    assert!(flat_t >= 300 * dt, "flat fail tuning {flat_t}");
    // Signature: every signature bucket (≈ 24 bytes each) is examined —
    // far beyond the tree schemes' handful of probes, far below flat's
    // full-cycle listen.
    let it = u64::from(params.header_size) + 16; // default SigParams
    assert!(
        sig_t > 250 * it && sig_t < flat_t / 4,
        "signature fail tuning {sig_t} (flat {flat_t})"
    );
    assert!(
        sig_t > dist_t * 2,
        "signature ({sig_t}) ≫ tree schemes ({dist_t}) on failures"
    );
}

#[test]
fn hashing_absence_costs_one_chain() {
    let (ds, pool) = fixtures();
    let params = Params::paper();
    let sys = HashScheme::new().build(&ds, &params).unwrap();
    for (i, k) in pool.iter().enumerate().take(60) {
        let out = sys.probe(*k, i as u64 * 31_337);
        assert!(!out.found);
        // Locate (≤2 reads) + slot + short chain.
        assert!(out.probes <= 12, "probes={}", out.probes);
    }
}

#[test]
fn simulated_found_rate_tracks_availability() {
    let (ds, pool) = fixtures();
    let params = Params::paper();
    let sys = DistributedScheme::new().build(&ds, &params).unwrap();
    for pct in [0.0f64, 0.4, 1.0] {
        let workload = QueryWorkload::new(&ds, pool.clone(), pct, Popularity::Uniform, 3);
        let mut cfg = SimConfig::quick();
        cfg.min_rounds = 3;
        cfg.max_rounds = 3;
        cfg.event_driven = false;
        let report = Simulator::new(&sys, workload, cfg).run();
        let rate = report.found as f64 / report.requests as f64;
        assert!(
            (rate - pct).abs() < 0.08,
            "availability {pct}: found rate {rate}"
        );
        assert_eq!(report.aborted, 0);
    }
}
