//! Internal validity of the testbed: the discrete-event engine and the
//! direct walker execute the same protocol machines, so their outcomes
//! must be *identical* — per request, for every scheme.

use bda::prelude::*;
use bda::sim::run_requests;

fn systems(ds: &Dataset, params: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(FlatScheme.build(ds, params).unwrap()),
        Box::new(OneMScheme::new().build(ds, params).unwrap()),
        Box::new(DistributedScheme::new().build(ds, params).unwrap()),
        Box::new(HashScheme::new().build(ds, params).unwrap()),
        Box::new(SimpleSignatureScheme::new().build(ds, params).unwrap()),
        Box::new(IntegratedSignatureScheme::new(6).build(ds, params).unwrap()),
        Box::new(MultiLevelSignatureScheme::new(6).build(ds, params).unwrap()),
        Box::new(HybridScheme::new().build(ds, params).unwrap()),
    ]
}

#[test]
fn event_engine_equals_direct_walker_per_request() {
    let (ds, pool) = DatasetBuilder::new(250, 0xD1CE)
        .build_with_absent_pool(50)
        .unwrap();
    let params = Params::paper();
    // A mixed batch: hits and misses, bursty and spread arrivals.
    let mut requests: Vec<(Ticks, Key)> = Vec::new();
    for i in 0..300u64 {
        let key = if i % 5 == 4 {
            pool[(i as usize / 5) % pool.len()]
        } else {
            ds.record((i as usize * 7) % ds.len()).key
        };
        let arrival = (i * 13_331) % 4_000_000 + (i % 3) * 17;
        requests.push((arrival, key));
    }

    for sys in systems(&ds, &params) {
        let evented = run_requests(sys.as_ref(), &requests);
        for (res, &(t, k)) in evented.iter().zip(&requests) {
            let direct = sys.probe(k, t);
            assert_eq!(
                res.outcome,
                direct,
                "{}: divergence at t={t} key={k}",
                sys.scheme_name()
            );
        }
    }
}

#[test]
fn simulator_fast_path_equals_event_path_for_all_schemes() {
    let ds = DatasetBuilder::new(150, 0xBEEF).build().unwrap();
    let params = Params::paper();
    for sys in systems(&ds, &params) {
        let mut cfg = SimConfig::quick();
        cfg.min_rounds = 2;
        cfg.max_rounds = 2;
        cfg.round_requests = 100;
        cfg.event_driven = true;
        let a = Simulator::uniform(sys.as_ref(), &ds, cfg).run();
        cfg.event_driven = false;
        let b = Simulator::uniform(sys.as_ref(), &ds, cfg).run();
        assert_eq!(a.access, b.access, "{}", sys.scheme_name());
        assert_eq!(a.tuning, b.tuning, "{}", sys.scheme_name());
        assert_eq!(a.found, b.found, "{}", sys.scheme_name());
        assert_eq!(a.false_drops, b.false_drops, "{}", sys.scheme_name());
    }
}

#[test]
fn stepping_runs_report_monotone_time() {
    use bda::core::WalkStep;
    let ds = DatasetBuilder::new(100, 3).build().unwrap();
    let params = Params::paper();
    for sys in systems(&ds, &params) {
        let mut run = sys.begin(ds.record(50).key, 777);
        let mut last = 0u64;
        loop {
            match run.step() {
                WalkStep::Read { from, until, .. } => {
                    assert!(from >= last && until > from, "{}", sys.scheme_name());
                    last = until;
                }
                WalkStep::Doze { until } => {
                    assert!(until >= last, "{}", sys.scheme_name());
                    last = until;
                }
                WalkStep::Done(out) => {
                    assert!(out.found);
                    break;
                }
            }
        }
    }
}
