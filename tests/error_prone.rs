//! Error-prone channel (extension): every scheme must stay *correct* under
//! bucket loss — queries eventually succeed, absence is still reported
//! truthfully, and costs degrade monotonically-ish with the loss rate.

use bda::core::ErrorModel;
use bda::prelude::*;

fn systems(ds: &Dataset, params: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(FlatScheme.build(ds, params).unwrap()),
        Box::new(OneMScheme::new().build(ds, params).unwrap()),
        Box::new(DistributedScheme::new().build(ds, params).unwrap()),
        Box::new(HashScheme::new().build(ds, params).unwrap()),
        Box::new(SimpleSignatureScheme::new().build(ds, params).unwrap()),
        Box::new(IntegratedSignatureScheme::new(8).build(ds, params).unwrap()),
        Box::new(MultiLevelSignatureScheme::new(8).build(ds, params).unwrap()),
        Box::new(HybridScheme::new().build(ds, params).unwrap()),
    ]
}

#[test]
fn lossy_channel_preserves_correctness() {
    let (ds, pool) = DatasetBuilder::new(150, 0xBAD)
        .build_with_absent_pool(20)
        .unwrap();
    let params = Params::paper();
    for loss in [0.02, 0.10, 0.25] {
        let errors = ErrorModel::new(loss, 99);
        for sys in systems(&ds, &params) {
            // Present keys are always found despite corruption.
            for (i, r) in ds.records().iter().enumerate().step_by(11) {
                let out = sys.probe_with_errors(r.key, i as u64 * 977, errors);
                assert!(
                    out.found,
                    "{} lost key {} at loss {loss}",
                    sys.scheme_name(),
                    r.key
                );
                assert!(!out.aborted, "{}", sys.scheme_name());
            }
            // Absent keys are never hallucinated.
            for (i, k) in pool.iter().enumerate() {
                let out = sys.probe_with_errors(*k, i as u64 * 1013, errors);
                assert!(!out.found, "{} hallucinated under loss", sys.scheme_name());
                assert!(!out.aborted, "{}", sys.scheme_name());
            }
        }
    }
}

#[test]
fn lossless_error_model_is_identity() {
    let ds = DatasetBuilder::new(80, 5).build().unwrap();
    let params = Params::paper();
    for sys in systems(&ds, &params) {
        for (i, r) in ds.records().iter().enumerate().step_by(9) {
            let t = i as u64 * 733;
            let plain = sys.probe(r.key, t);
            let lossless = sys.probe_with_errors(r.key, t, ErrorModel::NONE);
            assert_eq!(plain, lossless, "{}", sys.scheme_name());
            assert_eq!(plain.retries, 0);
        }
    }
}

#[test]
fn costs_degrade_with_loss() {
    let ds = DatasetBuilder::new(300, 7).build().unwrap();
    let params = Params::paper();
    let sys = DistributedScheme::new().build(&ds, &params).unwrap();
    let mean_access = |loss: f64| {
        let errors = ErrorModel::new(loss, 3);
        let mut total = 0u64;
        let mut retries = 0u64;
        let mut n = 0u64;
        for (i, r) in ds.records().iter().enumerate() {
            let out = sys.probe_with_errors(r.key, i as u64 * 4099, errors);
            assert!(out.found);
            total += out.access;
            retries += u64::from(out.retries);
            n += 1;
        }
        (total as f64 / n as f64, retries as f64 / n as f64)
    };
    let (at0, r0) = mean_access(0.0);
    let (at10, r10) = mean_access(0.10);
    let (at30, r30) = mean_access(0.30);
    assert_eq!(r0, 0.0);
    assert!(r10 > 0.0 && r30 > r10, "retries rise with loss");
    assert!(at10 > at0, "access degrades with loss");
    assert!(at30 > at10, "…monotonically across these rates");
}

#[test]
fn hybrid_attr_queries_survive_loss() {
    let ds = DatasetBuilder::new(120, 9).build().unwrap();
    let params = Params::paper();
    let sys = HybridScheme::new().build(&ds, &params).unwrap();
    let errors = ErrorModel::new(0.10, 17);
    for (i, r) in ds.records().iter().enumerate().step_by(13) {
        let m = sys.attr_query(r.attrs[1]);
        let out =
            bda::core::machine::run_machine_with_errors(sys.channel(), m, i as u64 * 577, errors);
        assert!(out.found, "attr {} lost", r.attrs[1]);
        assert!(!out.aborted);
    }
}
