//! Error-prone channel (extension): every scheme must stay *correct* under
//! bucket loss — queries eventually succeed, absence is still reported
//! truthfully, and costs degrade monotonically-ish with the loss rate.

use bda::core::ErrorModel;
use bda::prelude::*;

fn systems(ds: &Dataset, params: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(FlatScheme.build(ds, params).unwrap()),
        Box::new(OneMScheme::new().build(ds, params).unwrap()),
        Box::new(DistributedScheme::new().build(ds, params).unwrap()),
        Box::new(HashScheme::new().build(ds, params).unwrap()),
        Box::new(SimpleSignatureScheme::new().build(ds, params).unwrap()),
        Box::new(IntegratedSignatureScheme::new(8).build(ds, params).unwrap()),
        Box::new(MultiLevelSignatureScheme::new(8).build(ds, params).unwrap()),
        Box::new(HybridScheme::new().build(ds, params).unwrap()),
    ]
}

#[test]
fn lossy_channel_preserves_correctness() {
    let (ds, pool) = DatasetBuilder::new(150, 0xBAD)
        .build_with_absent_pool(20)
        .unwrap();
    let params = Params::paper();
    for loss in [0.02, 0.10, 0.25] {
        let errors = ErrorModel::new(loss, 99);
        for sys in systems(&ds, &params) {
            // Present keys are always found despite corruption.
            for (i, r) in ds.records().iter().enumerate().step_by(11) {
                let out = sys.probe_with_errors(r.key, i as u64 * 977, errors);
                assert!(
                    out.found,
                    "{} lost key {} at loss {loss}",
                    sys.scheme_name(),
                    r.key
                );
                assert!(!out.aborted, "{}", sys.scheme_name());
            }
            // Absent keys are never hallucinated.
            for (i, k) in pool.iter().enumerate() {
                let out = sys.probe_with_errors(*k, i as u64 * 1013, errors);
                assert!(!out.found, "{} hallucinated under loss", sys.scheme_name());
                assert!(!out.aborted, "{}", sys.scheme_name());
            }
        }
    }
}

#[test]
fn lossless_error_model_is_identity() {
    let ds = DatasetBuilder::new(80, 5).build().unwrap();
    let params = Params::paper();
    for sys in systems(&ds, &params) {
        for (i, r) in ds.records().iter().enumerate().step_by(9) {
            let t = i as u64 * 733;
            let plain = sys.probe(r.key, t);
            let lossless = sys.probe_with_errors(r.key, t, ErrorModel::NONE);
            assert_eq!(plain, lossless, "{}", sys.scheme_name());
            assert_eq!(plain.retries, 0);
        }
    }
}

#[test]
fn costs_degrade_with_loss() {
    let ds = DatasetBuilder::new(300, 7).build().unwrap();
    let params = Params::paper();
    let sys = DistributedScheme::new().build(&ds, &params).unwrap();
    let mean_access = |loss: f64| {
        let errors = ErrorModel::new(loss, 3);
        let mut total = 0u64;
        let mut retries = 0u64;
        let mut n = 0u64;
        for (i, r) in ds.records().iter().enumerate() {
            let out = sys.probe_with_errors(r.key, i as u64 * 4099, errors);
            assert!(out.found);
            total += out.access;
            retries += u64::from(out.retries);
            n += 1;
        }
        (total as f64 / n as f64, retries as f64 / n as f64)
    };
    let (at0, r0) = mean_access(0.0);
    let (at10, r10) = mean_access(0.10);
    let (at30, r30) = mean_access(0.30);
    assert_eq!(r0, 0.0);
    assert!(r10 > 0.0 && r30 > r10, "retries rise with loss");
    assert!(at10 > at0, "access degrades with loss");
    assert!(at30 > at10, "…monotonically across these rates");
}

/// The same correctness contract holds when queries run as *concurrent
/// clients* through the discrete-event engine rather than as isolated
/// walkers — and because the error model is a pure function of bucket
/// start time, each request's outcome is identical to its walker run.
#[test]
fn event_engine_preserves_correctness_under_loss() {
    let (ds, pool) = DatasetBuilder::new(100, 0xBAD)
        .build_with_absent_pool(15)
        .unwrap();
    let params = Params::paper();
    let keys: Vec<Key> = ds.keys().collect();
    let requests: Vec<(u64, Key)> = (0..80)
        .map(|i| {
            let key = if i % 7 == 0 {
                pool[i % pool.len()]
            } else {
                keys[(i * 13) % keys.len()]
            };
            (i as u64 * 997, key)
        })
        .collect();
    let present: std::collections::BTreeSet<u64> = keys.iter().map(|k| k.0).collect();
    for loss in [0.02, 0.10, 0.25] {
        let errors = ErrorModel::new(loss, 99);
        for sys in systems(&ds, &params) {
            let completed = bda::sim::run_requests_with_faults(
                sys.as_ref(),
                &requests,
                errors,
                bda::core::RetryPolicy::UNBOUNDED,
            );
            for r in completed {
                assert!(!r.outcome.aborted, "{}", sys.scheme_name());
                assert_eq!(
                    r.outcome.found,
                    present.contains(&r.key.0),
                    "{} answered wrongly at loss {loss}",
                    sys.scheme_name()
                );
                // Engine ≡ isolated walker, per request.
                let walker = sys.probe_with_errors(r.key, r.arrival, errors);
                assert_eq!(r.outcome, walker, "{}", sys.scheme_name());
            }
        }
    }
}

/// A bounded retry policy abandons truthfully through the engine: every
/// give-up is reported as `abandoned` (never a wrong `found` verdict), and
/// the engine's degradation counters agree with the outcomes.
#[test]
fn event_engine_bounded_retries_abandon_truthfully() {
    let ds = DatasetBuilder::new(100, 0xBAD).build().unwrap();
    let params = Params::paper();
    let keys: Vec<Key> = ds.keys().collect();
    let requests: Vec<(u64, Key)> = (0..60)
        .map(|i| (i as u64 * 1361, keys[(i * 17) % keys.len()]))
        .collect();
    let errors = ErrorModel::new(0.25, 4);
    let policy = bda::core::RetryPolicy::bounded(1);
    for sys in systems(&ds, &params) {
        let mut engine = bda::sim::Engine::with_faults(sys.as_ref(), errors, policy);
        let completed = engine.run_batch(&requests);
        let mut abandoned = 0u64;
        for r in &completed {
            assert!(!r.outcome.aborted, "{}", sys.scheme_name());
            if r.outcome.abandoned {
                assert!(!r.outcome.found, "{} lied on give-up", sys.scheme_name());
                abandoned += 1;
            } else {
                // All keys here are present: not abandoned means found.
                assert!(r.outcome.found, "{}", sys.scheme_name());
            }
        }
        let stats = engine.stats();
        assert_eq!(stats.abandoned, abandoned, "{}", sys.scheme_name());
        assert!(
            stats.corrupt_reads > 0,
            "{} saw no corruption at 25% loss",
            sys.scheme_name()
        );
    }
}

#[test]
fn hybrid_attr_queries_survive_loss() {
    let ds = DatasetBuilder::new(120, 9).build().unwrap();
    let params = Params::paper();
    let sys = HybridScheme::new().build(&ds, &params).unwrap();
    let errors = ErrorModel::new(0.10, 17);
    for (i, r) in ds.records().iter().enumerate().step_by(13) {
        let m = sys.attr_query(r.attrs[1]);
        let out =
            bda::core::machine::run_machine_with_errors(sys.channel(), m, i as u64 * 577, errors);
        assert!(out.found, "attr {} lost", r.attrs[1]);
        assert!(!out.aborted);
    }
}
