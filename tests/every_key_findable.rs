//! Cross-crate correctness: every broadcast key must be retrievable by
//! every access method from any tune-in instant, with sane metrics.

use bda::prelude::*;

fn dataset() -> Dataset {
    DatasetBuilder::new(400, 0xF00D).build().unwrap()
}

fn systems(ds: &Dataset, params: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(FlatScheme.build(ds, params).unwrap()),
        Box::new(OneMScheme::new().build(ds, params).unwrap()),
        Box::new(DistributedScheme::new().build(ds, params).unwrap()),
        Box::new(HashScheme::new().build(ds, params).unwrap()),
        Box::new(SimpleSignatureScheme::new().build(ds, params).unwrap()),
        Box::new(IntegratedSignatureScheme::new(8).build(ds, params).unwrap()),
        Box::new(MultiLevelSignatureScheme::new(8).build(ds, params).unwrap()),
        Box::new(HybridScheme::new().build(ds, params).unwrap()),
    ]
}

#[test]
fn every_key_every_scheme_many_alignments() {
    let ds = dataset();
    let params = Params::paper();
    for sys in systems(&ds, &params) {
        let cycle = sys.cycle_len();
        for (i, r) in ds.records().iter().enumerate() {
            // A rotating set of tune-in times covering all cycle phases.
            for s in 0..4u64 {
                let t = (i as u64 * 2_654_435_761 + s * cycle / 4) % (3 * cycle);
                let out = sys.probe(r.key, t);
                assert!(
                    out.found,
                    "{}: key {} not found from t={t}",
                    sys.scheme_name(),
                    r.key
                );
                assert!(!out.aborted, "{}", sys.scheme_name());
                assert!(out.tuning <= out.access, "{}", sys.scheme_name());
                assert!(
                    out.access <= 3 * cycle,
                    "{}: access {} > 3 cycles",
                    sys.scheme_name(),
                    out.access
                );
                assert!(out.probes >= 1);
            }
        }
    }
}

#[test]
fn outcome_is_phase_invariant() {
    // Shifting the tune-in by whole cycles must not change anything.
    let ds = dataset();
    let params = Params::paper();
    for sys in systems(&ds, &params) {
        let cycle = sys.cycle_len();
        let key = ds.record(123).key;
        for t in [0u64, 17, cycle / 2] {
            let a = sys.probe(key, t);
            let b = sys.probe(key, t + cycle);
            let c = sys.probe(key, t + 1000 * cycle);
            assert_eq!(a, b, "{}", sys.scheme_name());
            assert_eq!(a, c, "{}", sys.scheme_name());
        }
    }
}

#[test]
fn tiny_datasets_work_everywhere() {
    for n in [1usize, 2, 3, 5, 8] {
        let ds = DatasetBuilder::new(n, 7).build().unwrap();
        let params = Params::paper();
        for sys in systems(&ds, &params) {
            for r in ds.records() {
                let out = sys.probe(r.key, 12_345);
                assert!(out.found, "{} n={n}", sys.scheme_name());
                assert!(!out.aborted);
            }
        }
    }
}

#[test]
fn fig6_parameter_range_is_supported() {
    // Every record/key ratio of the Fig. 6 sweep must build and answer.
    let ds = DatasetBuilder::new(150, 9).build().unwrap();
    for ratio in [5u32, 10, 20, 25, 50, 100] {
        let params = Params::with_record_key_ratio(ratio).unwrap();
        for sys in systems(&ds, &params) {
            let key = ds.record(77).key;
            let out = sys.probe(key, 999_999);
            assert!(out.found, "{} ratio={ratio}", sys.scheme_name());
            assert!(!out.aborted);
        }
    }
}
