//! Qualitative reproduction of the paper's figures: who wins, by what
//! order, where behaviour changes. These are the §4–§5 claims the bench
//! harness regenerates quantitatively; here they gate the test suite.

use bda::prelude::*;

fn mean(
    sys: &dyn DynSystem,
    ds: &Dataset,
    availability: f64,
    pool: &[Key],
    seed: u64,
) -> (f64, f64) {
    let workload = QueryWorkload::new(ds, pool.to_vec(), availability, Popularity::Uniform, seed);
    let mut cfg = SimConfig::quick();
    cfg.event_driven = false;
    let r = Simulator::new(sys, workload, cfg).run();
    assert_eq!(r.aborted, 0, "{}", sys.scheme_name());
    (r.mean_access(), r.mean_tuning())
}

/// Fig. 4 orderings at 100 % availability.
#[test]
fn fig4_orderings() {
    let nr = 2_000;
    let (ds, _) = DatasetBuilder::new(nr, 41)
        .build_with_absent_pool(1)
        .unwrap();
    let p = Params::paper();

    let flat = FlatScheme.build(&ds, &p).unwrap();
    let dist = DistributedScheme::new().build(&ds, &p).unwrap();
    let hash = HashScheme::new().build(&ds, &p).unwrap();
    let sig = SimpleSignatureScheme::new().build(&ds, &p).unwrap();

    let (at_flat, tt_flat) = mean(&flat, &ds, 1.0, &[], 1);
    let (at_dist, tt_dist) = mean(&dist, &ds, 1.0, &[], 2);
    let (at_hash, tt_hash) = mean(&hash, &ds, 1.0, &[], 3);
    let (at_sig, tt_sig) = mean(&sig, &ds, 1.0, &[], 4);

    // Fig. 4(a): flat ≤ signature < distributed < hashing.
    assert!(at_flat < at_sig, "flat has the best access time");
    assert!(at_sig < at_dist, "signature beats distributed on access");
    assert!(at_dist < at_hash, "hashing has the worst access time");

    // Fig. 4(b): hashing < distributed < signature ≪ flat.
    assert!(tt_hash < tt_dist, "hashing has the best tuning time");
    assert!(tt_dist < tt_sig, "distributed beats signature on tuning");
    assert!(
        tt_sig < tt_flat / 2.0,
        "flat tuning is far worse than any index"
    );
}

/// Fig. 4(b): distributed tuning is a step function of Nr (jumps only when
/// the tree gains a level), while signature tuning grows linearly.
#[test]
fn fig4_tuning_growth_shapes() {
    let p = Params::paper();
    let sizes = [1_000usize, 2_000, 4_000];
    let mut dist_t = Vec::new();
    let mut sig_t = Vec::new();
    for (i, &nr) in sizes.iter().enumerate() {
        let ds = DatasetBuilder::new(nr, 50 + i as u64).build().unwrap();
        let dist = DistributedScheme::new().build(&ds, &p).unwrap();
        let sig = SimpleSignatureScheme::new().build(&ds, &p).unwrap();
        dist_t.push(mean(&dist, &ds, 1.0, &[], 9).1);
        sig_t.push(mean(&sig, &ds, 1.0, &[], 9).1);
    }
    // Signature tuning scales ~linearly (×4 records → ~×4 tuning).
    let growth = sig_t[2] / sig_t[0];
    assert!((3.0..5.0).contains(&growth), "signature growth {growth}");
    // Distributed tuning moves by at most ~1 bucket across the same range
    // (k is constant or +1).
    let dt = f64::from(p.data_bucket_size());
    assert!(
        (dist_t[2] - dist_t[0]).abs() <= 1.5 * dt,
        "distributed tuning nearly flat: {dist_t:?}"
    );
}

/// Fig. 5: low availability favours the B+-tree schemes; high availability
/// favours signature (access) and hashing (tuning); hashing access is flat
/// in availability.
#[test]
fn fig5_availability_crossover() {
    let nr = 2_000;
    let (ds, pool) = DatasetBuilder::new(nr, 43)
        .build_with_absent_pool(nr)
        .unwrap();
    let p = Params::paper();

    let dist = DistributedScheme::new().build(&ds, &p).unwrap();
    let hash = HashScheme::new().build(&ds, &p).unwrap();
    let sig = SimpleSignatureScheme::new().build(&ds, &p).unwrap();

    // Tuning at 0 %: distributed ≪ signature, and failure detection costs
    // the trees no more than success (they read only the index).
    let (_, tt_dist0) = mean(&dist, &ds, 0.0, &pool, 11);
    let (_, tt_sig0) = mean(&sig, &ds, 0.0, &pool, 13);
    assert!(tt_dist0 < tt_sig0 / 5.0, "trees detect absence cheaply");
    let (_, tt_dist1_pre) = mean(&dist, &ds, 1.0, &[], 19);
    assert!(
        tt_dist0 < tt_dist1_pre * 1.1,
        "tree failure detection no dearer than success"
    );
    // The paper's "hashing must still read all overflow buckets" point
    // shows with a realistically imperfect hash: then the trees win tuning
    // at 0 % availability. (With our perfectly mixed default hash, chains
    // are so short that hashing stays marginally cheaper — the deviation
    // documented in EXPERIMENTS.md.)
    let lossy_hash = HashScheme::new()
        .with_hash(HashFn::Clustered { factor: 4 })
        .build(&ds, &p)
        .unwrap();
    let (_, tt_badhash0) = mean(&lossy_hash, &ds, 0.0, &pool, 12);
    assert!(
        tt_dist0 < tt_badhash0,
        "trees beat an imperfect hash at 0% availability: {tt_dist0} vs {tt_badhash0}"
    );

    // Tuning at 100 %: hashing wins.
    let (_, tt_dist1) = mean(&dist, &ds, 1.0, &[], 14);
    let (_, tt_hash1) = mean(&hash, &ds, 1.0, &[], 15);
    assert!(tt_hash1 < tt_dist1, "hashing wins tuning at 100%");

    // Hashing access time is (nearly) independent of availability.
    let (at_hash0, _) = mean(&hash, &ds, 0.0, &pool, 16);
    let (at_hash1, _) = mean(&hash, &ds, 1.0, &[], 17);
    let rel = (at_hash0 - at_hash1).abs() / at_hash1;
    assert!(rel < 0.08, "hashing access flat in availability: {rel}");

    // Signature tuning decreases as availability rises (no full scans).
    let (_, tt_sig1) = mean(&sig, &ds, 1.0, &[], 18);
    assert!(
        tt_sig1 < tt_sig0,
        "signature tuning drops with availability"
    );
}

/// Fig. 6: the record/key ratio strongly affects only the B+-tree schemes;
/// at large ratios they approach hashing's tuning time.
#[test]
fn fig6_ratio_effects() {
    let nr = 2_000;
    let ds = DatasetBuilder::new(nr, 44).build().unwrap();

    let at_ratio = |ratio: u32| {
        let p = Params::with_record_key_ratio(ratio).unwrap();
        let dist = DistributedScheme::new().build(&ds, &p).unwrap();
        let hash = HashScheme::new().build(&ds, &p).unwrap();
        let (at_d, tt_d) = mean(&dist, &ds, 1.0, &[], 21);
        let (at_h, tt_h) = mean(&hash, &ds, 1.0, &[], 22);
        (at_d, tt_d, at_h, tt_h)
    };

    let (at_d5, tt_d5, at_h5, _tt_h5) = at_ratio(5);
    let (at_d100, tt_d100, at_h100, tt_h100) = at_ratio(100);

    // Small ratio: the index overhead balloons the tree scheme's access
    // time relative to its own large-ratio behaviour.
    let d_gain = (at_d5 / at_h5) / (at_d100 / at_h100);
    assert!(
        d_gain > 1.15,
        "distributed improves relative to hashing as the ratio grows: {d_gain}"
    );

    // Large ratio: tree tuning approaches hashing tuning (within ~2×).
    assert!(
        tt_d100 < 2.0 * tt_h100,
        "distributed tuning near hashing at ratio 100: {tt_d100} vs {tt_h100}"
    );
    // And tree tuning shrinks as the ratio grows (fewer, shallower levels).
    assert!(
        tt_d100 < tt_d5,
        "tuning falls with the ratio: {tt_d100} vs {tt_d5}"
    );
}

/// §5.3 summary, rule (5): at large record/key ratios, (1,m) is preferable
/// on access time and distributed on tuning-time-adjusted balance.
#[test]
fn selection_rule_one_m_vs_distributed() {
    let nr = 2_000;
    let ds = DatasetBuilder::new(nr, 45).build().unwrap();
    let p = Params::paper();
    let one_m = OneMScheme::new().build(&ds, &p).unwrap();
    let dist = DistributedScheme::new().build(&ds, &p).unwrap();
    let (at_1m, tt_1m) = mean(&one_m, &ds, 1.0, &[], 31);
    let (at_d, tt_d) = mean(&dist, &ds, 1.0, &[], 32);
    // Distributed trims the cycle, so it wins access time at the optimum…
    assert!(at_d < at_1m, "distributed access {at_d} vs (1,m) {at_1m}");
    // …while both share the (k + const)·Dt tuning class.
    let dt = f64::from(p.data_bucket_size());
    assert!((tt_1m - tt_d).abs() < 2.0 * dt);
}
