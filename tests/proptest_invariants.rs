//! Property-based invariants over randomized datasets, parameters and
//! tune-in times — the safety net under every scheme's layout arithmetic.

use bda::prelude::*;
use proptest::prelude::*;

/// Random dataset of 1–300 records with well-spread distinct keys.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..300, any::<u64>())
        .prop_map(|(n, seed)| DatasetBuilder::new(n, seed).build().expect("valid dataset"))
}

/// Random record/key geometry within the paper's Fig. 6 range.
fn arb_params() -> impl Strategy<Value = Params> {
    (5u32..=100).prop_map(|ratio| Params::with_record_key_ratio(ratio).expect("valid ratio"))
}

fn all_systems(ds: &Dataset, p: &Params) -> Vec<Box<dyn DynSystem>> {
    vec![
        Box::new(FlatScheme.build(ds, p).unwrap()),
        Box::new(OneMScheme::new().build(ds, p).unwrap()),
        Box::new(DistributedScheme::new().build(ds, p).unwrap()),
        Box::new(HashScheme::new().build(ds, p).unwrap()),
        Box::new(SimpleSignatureScheme::new().build(ds, p).unwrap()),
        Box::new(IntegratedSignatureScheme::new(5).build(ds, p).unwrap()),
        Box::new(MultiLevelSignatureScheme::new(5).build(ds, p).unwrap()),
        Box::new(HybridScheme::new().build(ds, p).unwrap()),
    ]
}

/// Pinned counterexample once minimized by proptest (from the since-retired
/// `proptest_invariants.proptest-regressions` file): a single-record dataset
/// probed for four absent keys at `t = 0` with a 5:1 record/key ratio made
/// `absent_keys_never_found` fail. Kept as a plain deterministic test so the
/// case runs on every `cargo test` regardless of the property runner.
#[test]
fn regression_single_record_absent_keys() {
    let ds = Dataset::new(vec![bda::core::Record::new(
        Key(16521629639822800165),
        vec![16521629639822800165, 10319722088908242066, 20, 118],
    )])
    .unwrap();
    let pool = [
        Key(14940551573328774178),
        Key(7330353808519802590),
        Key(15675389096631490580),
        Key(2742214171129066944),
    ];
    let params = Params {
        record_size: 500,
        key_size: 100,
        ptr_size: 4,
        header_size: 8,
    };
    for sys in all_systems(&ds, &params) {
        for key in pool {
            let out = sys.probe(key, 0);
            assert!(!out.found, "{} hallucinated {key}", sys.scheme_name());
            assert!(!out.aborted, "{} aborted on {key}", sys.scheme_name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scheme retrieves every key it broadcasts; metrics are sane.
    #[test]
    fn present_keys_always_found(
        ds in arb_dataset(),
        params in arb_params(),
        tune_seed in any::<u64>(),
    ) {
        for sys in all_systems(&ds, &params) {
            let cycle = sys.cycle_len();
            // Three pseudo-random keys and alignments per system.
            for i in 0..3u64 {
                let idx = ((tune_seed.rotate_left(i as u32 * 11) >> 7) as usize) % ds.len();
                let key = ds.record(idx).key;
                let t = tune_seed.rotate_right(i as u32 * 13) % (4 * cycle);
                let out = sys.probe(key, t);
                prop_assert!(out.found, "{} missed {key} at t={t}", sys.scheme_name());
                prop_assert!(!out.aborted);
                prop_assert!(out.tuning <= out.access);
                prop_assert!(out.access <= 3 * cycle);
            }
        }
    }

    /// No scheme ever hallucinates a key that is not broadcast.
    #[test]
    fn absent_keys_never_found(
        (ds, pool) in (1usize..200, any::<u64>()).prop_map(|(n, seed)| {
            DatasetBuilder::new(n, seed).build_with_absent_pool(4).expect("dataset")
        }),
        params in arb_params(),
        t in any::<u64>(),
    ) {
        for sys in all_systems(&ds, &params) {
            let t = t % (8 * sys.cycle_len());
            for key in &pool {
                let out = sys.probe(*key, t);
                prop_assert!(!out.found, "{} hallucinated {key}", sys.scheme_name());
                prop_assert!(!out.aborted);
            }
        }
    }

    /// Outcomes are invariant under whole-cycle shifts of the tune-in.
    #[test]
    fn cycle_shift_invariance(
        ds in arb_dataset(),
        t in any::<u64>(),
        shift in 1u64..50,
    ) {
        let params = Params::paper();
        for sys in all_systems(&ds, &params) {
            let cycle = sys.cycle_len();
            let t = t % cycle;
            let key = ds.record(ds.len() / 2).key;
            let a = sys.probe(key, t);
            let b = sys.probe(key, t + shift * cycle);
            prop_assert_eq!(a, b, "{} shift variance", sys.scheme_name());
        }
    }

    /// Hashing layout identities: `N = Na + Nc` and every chain reachable.
    #[test]
    fn hashing_layout_identities(ds in arb_dataset(), load in 3u32..=10) {
        let params = Params::paper();
        let scheme = HashScheme::new().with_load_factor(f64::from(load) / 5.0);
        let sys = scheme.build(&ds, &params).unwrap();
        prop_assert_eq!(
            bda::core::DynSystem::num_buckets(&sys),
            sys.na() as usize + sys.num_collisions()
        );
        prop_assert_eq!(
            bda::core::DynSystem::num_buckets(&sys),
            ds.len() + sys.num_empty()
        );
    }

    /// Signatures never produce false negatives, whatever their geometry.
    #[test]
    fn signatures_have_no_false_negatives(
        ds in arb_dataset(),
        sig_bytes in 1u32..32,
        w in 1u32..8,
    ) {
        let sigp = SigParams { sig_bytes, bits_per_attr: w };
        for r in ds.records().iter().step_by(7) {
            let rec = sigp.record_signature(r.key, &r.attrs);
            prop_assert!(rec.matches(&sigp.query_signature(r.key)));
        }
        // End-to-end: even 1-byte signatures only cost false drops.
        let params = Params::paper();
        let sys = SimpleSignatureScheme::with_params(sigp).build(&ds, &params).unwrap();
        let key = ds.record(0).key;
        prop_assert!(DynSystem::probe(&sys, key, 123).found);
    }

    /// The B+-tree index is consistent for any dataset: search() finds
    /// exactly the keys that exist.
    #[test]
    fn btree_reference_search_is_exact(ds in arb_dataset(), fanout in 2usize..20) {
        let tree = bda::btree::IndexTree::build(&ds, fanout).unwrap();
        for (i, r) in ds.records().iter().enumerate().step_by(5) {
            prop_assert_eq!(tree.search(r.key), Some(i));
            prop_assert_eq!(tree.search(Key(r.key.value() ^ 1)), None);
        }
    }

    /// Lossy channels cost time, never correctness: present keys found,
    /// absent keys rejected, no aborts — at any loss rate up to 30 %.
    #[test]
    fn lossy_channels_preserve_correctness(
        (ds, pool) in (2usize..120, any::<u64>()).prop_map(|(n, seed)| {
            DatasetBuilder::new(n, seed).build_with_absent_pool(2).expect("dataset")
        }),
        loss in 0.0f64..0.30,
        err_seed in any::<u64>(),
        t in any::<u64>(),
    ) {
        let params = Params::paper();
        let errors = bda::core::ErrorModel::new(loss, err_seed);
        for sys in all_systems(&ds, &params) {
            let t = t % (4 * sys.cycle_len());
            let key = ds.record(ds.len() / 3).key;
            let hit = sys.probe_with_errors(key, t, errors);
            prop_assert!(hit.found, "{} lost a key at loss {loss}", sys.scheme_name());
            prop_assert!(!hit.aborted);
            prop_assert!(hit.tuning <= hit.access);
            let miss = sys.probe_with_errors(pool[0], t, errors);
            prop_assert!(!miss.found, "{} hallucinated", sys.scheme_name());
            prop_assert!(!miss.aborted, "{} gave up", sys.scheme_name());
        }
    }

    /// Walk-step accounting: the sum of listened intervals equals the
    /// reported tuning time, the last event ends at tune_in + access, and
    /// probes equals the number of Read steps.
    #[test]
    fn walk_steps_reconcile_with_outcome(
        ds in arb_dataset(),
        t in any::<u64>(),
        key_sel in any::<proptest::sample::Index>(),
    ) {
        use bda::core::WalkStep;
        let params = Params::paper();
        for sys in all_systems(&ds, &params) {
            let t = t % (2 * sys.cycle_len());
            let key = ds.record(key_sel.index(ds.len())).key;
            let mut run = sys.begin(key, t);
            let mut listened = 0u64;
            let mut reads = 0u32;
            let mut last_end = t;
            let outcome = loop {
                match run.step() {
                    WalkStep::Read { from, until, .. } => {
                        prop_assert!(from >= last_end);
                        listened += until - from;
                        reads += 1;
                        last_end = until;
                    }
                    WalkStep::Doze { until } => {
                        prop_assert!(until >= last_end);
                        last_end = until;
                    }
                    WalkStep::Done(out) => break out,
                }
            };
            prop_assert_eq!(listened, outcome.tuning, "{}", sys.scheme_name());
            prop_assert_eq!(reads, outcome.probes, "{}", sys.scheme_name());
            prop_assert_eq!(last_end, t + outcome.access, "{}", sys.scheme_name());
        }
    }

    /// Hybrid attribute queries find a record for every present attribute
    /// value and reject absent ones, from arbitrary alignments.
    #[test]
    fn hybrid_attribute_queries_are_exact(
        ds in arb_dataset(),
        t in any::<u64>(),
        idx in any::<proptest::sample::Index>(),
    ) {
        let params = Params::paper();
        let sys = HybridScheme::new().build(&ds, &params).unwrap();
        let t = t % (4 * bda::core::DynSystem::cycle_len(&sys));
        let rec = ds.record(idx.index(ds.len()));
        for &attr in rec.attrs.iter() {
            let out = sys.probe_attr(attr, t);
            prop_assert!(out.found, "attribute {attr} not found");
            prop_assert!(!out.aborted);
        }
        // A value present in no record's attributes: u64 keys/attrs are
        // sparse, so a fresh random value is absent with overwhelming
        // probability; verify before asserting.
        let phantom = 0xDEAD_BEEF_0BAD_F00Du64 ^ t;
        let is_present = ds.records().iter().any(|r| {
            r.key.value() == phantom || r.attrs.contains(&phantom)
        });
        if !is_present {
            let out = sys.probe_attr(phantom, t);
            prop_assert!(!out.found);
            prop_assert!(!out.aborted);
        }
    }
}
