//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the small API surface the workspace's benches use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated to a target run time
//! (~300 ms by default, CRITERION_TARGET_MS overrides), then timed in one
//! batch; mean ns/iteration is printed to stdout. There is no statistical
//! analysis, HTML report, or baseline comparison — for machine-readable
//! trend tracking the workspace uses `engine_bench` + `BENCH_engine.json`
//! instead.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching criterion's own `black_box` (benches may import
/// either this or `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

fn target_time() -> Duration {
    std::env::var("CRITERION_TARGET_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(300))
}

/// Identifier combining a function name and a parameter, e.g.
/// `BenchmarkId::new("flat", 5000)` → `flat/5000`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing driver passed to the closure of `bench_function`.
pub struct Bencher {
    /// (iterations, total elapsed) of the measured batch.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Calibrate then measure `routine`, recording mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: double iterations until the batch takes >= 10 ms.
        let mut n: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..n {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || n >= 1 << 30 {
                break elapsed.as_secs_f64() / n as f64;
            }
            n *= 2;
        };
        let target = target_time().as_secs_f64();
        let iters = ((target / per_iter.max(1e-12)) as u64).clamp(1, 1 << 32);
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(routine());
        }
        self.result = Some((iters, start.elapsed()));
    }
}

fn report(group: Option<&str>, id: &str, bencher: &Bencher) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match bencher.result {
        Some((iters, elapsed)) => {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("bench {label:<50} {ns:>14.1} ns/iter ({iters} iters)");
        }
        None => println!("bench {label:<50} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { result: None };
        f(&mut b);
        report(Some(&self.name), &id.id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { result: None };
        f(&mut b, input);
        report(Some(&self.name), &id.id, &b);
        self
    }

    /// Throughput/marker settings are accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(&mut self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { result: None };
        f(&mut b);
        report(None, id, &b);
        self
    }
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
