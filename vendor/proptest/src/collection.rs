//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

fn draw_len(range: &Range<usize>, rng: &mut TestRng) -> usize {
    assert!(range.start < range.end, "empty size range");
    range.start + rng.below((range.end - range.start) as u64) as usize
}

/// `Vec` of `len ∈ size` values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = draw_len(&self.size, rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` with `len ∈ size` distinct values drawn from `element`.
///
/// Like real proptest, the target length is best-effort: if the element
/// strategy cannot produce enough distinct values the set is smaller, but
/// at least `size.start` values are always produced when possible.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = draw_len(&self.size, rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 20 + 64 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// `BTreeMap` with `len ∈ size` entries: distinct keys from `key`, values
/// from `value`.
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = draw_len(&self.size, rng);
        let mut out = BTreeMap::new();
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 20 + 64 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}
