//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API surface the workspace's property tests
//! use: `Strategy` + `prop_map`, ranges and tuples as strategies,
//! `any::<T>()`, `Just`, `prop_oneof!`, `prop::collection::{vec,
//! btree_set, btree_map}`, `sample::Index`, `ProptestConfig`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   seed; cases are deterministic per (test name, case index), so a
//!   failure reproduces exactly by re-running the test.
//! * **No persistence.** `*.proptest-regressions` files are not read;
//!   known counterexamples are pinned as ordinary unit tests instead.
//! * **Deterministic.** There is no environment-dependent entropy at
//!   all, which doubles as a reproducibility guarantee for CI.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// `prop::…` alias used by `use proptest::prelude::*; prop::collection::vec(…)`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::sample;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Deterministic pseudo-random generator (splitmix64 core) used to drive
/// all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
