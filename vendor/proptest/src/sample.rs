//! `sample::Index` — a position into a collection whose length is only
//! known at use time.

use crate::strategy::{Arbitrary, Strategy};
use crate::TestRng;

/// An index into a not-yet-known-length collection; resolve with
/// [`Index::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Resolve against a collection of length `len` (must be nonzero).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;

    fn generate(&self, rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}

impl Arbitrary for Index {
    type Strategy = IndexStrategy;

    fn arbitrary() -> Self::Strategy {
        IndexStrategy
    }
}
