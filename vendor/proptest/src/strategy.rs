//! The `Strategy` trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::TestRng;

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// Map combinator returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniform choice between boxed alternatives — backs `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<sample::Index>()`, …).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range integer strategy backing `Arbitrary` for primitives.
pub struct AnyPrim<T> {
    _marker: PhantomData<T>,
}

impl<T> AnyPrim<T> {
    pub(crate) fn new() -> Self {
        AnyPrim {
            _marker: PhantomData,
        }
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy { AnyPrim::new() }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim::new()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    rng.next_u64() as $t
                } else {
                    lo + rng.below(span) as $t
                }
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Uniform choice among strategy arms of the same value type.
///
/// ```ignore
/// prop_oneof![Just(A), Just(B), (2u32..16).prop_map(C)]
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
