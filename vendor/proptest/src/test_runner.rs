//! Case runner behind the `proptest!` macro.

use crate::TestRng;

/// Subset of proptest's config: how many random cases per test.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a, used to derive a per-test base seed from the test's name so
/// every test explores a distinct but fully deterministic sequence.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Runs the body closure for every case, reporting the failing case on
/// panic so it can be reproduced (cases are deterministic).
pub fn run_cases<F: FnMut(&mut TestRng)>(config: ProptestConfig, test_name: &str, mut body: F) {
    let base = fnv1a(test_name);
    for case in 0..config.cases {
        let seed = base ^ (u64::from(case)).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut rng = TestRng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "proptest case {case}/{} of `{test_name}` failed (seed {seed:#x}); \
                 cases are deterministic — rerun the test to reproduce",
                config.cases
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn works(x in 0u64..100, (a, b) in (any::<u64>(), 1u32..4)) { … }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(config, stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                $body
            });
        }
    )*};
}

/// Assert within a proptest body (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}
